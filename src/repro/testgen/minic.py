"""Seed-deterministic structured MiniC program generator (Csmith-style).

``generate_minic(seed)`` produces a random — but always legal and
always terminating — MiniC program far beyond straight-line expression
soup: global scalars and arrays, helper functions with parameters and
bounded control flow, calls (the call graph is a DAG by construction,
so no recursion), nested counted loops, ``while`` loops with explicit
down-counters, compound assignments, guarded division, and masked
array indexing.

Legality invariants the generator maintains (and
``tests/test_testgen.py`` asserts):

* **termination** — every loop has a static trip bound; ``while`` loops
  run on a dedicated down-counter; functions only call
  previously-generated functions (call DAG);
* **no traps** — every ``/`` and ``%`` denominator is ``(expr | 1)``
  (never zero), every array index is masked with ``& (size-1)`` on
  power-of-two arrays (never out of bounds), shift amounts are masked
  to 6 bits;
* **determinism** — the only entropy source is ``random.Random(seed)``;
  the same ``(seed, config)`` always yields the identical program text.

The structured form (:class:`GeneratedMiniC`) keeps the top-level
statement list of ``main`` addressable so a failing program can be
shrunk statement-by-statement with
:func:`repro.fi.chaos.shrink_case` (see :func:`minimize_minic`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "GenConfig",
    "GeneratedMiniC",
    "generate_minic",
    "render_minic",
    "minimize_minic",
]

_INT_BINOPS = ["+", "-", "*", "&", "|", "^"]
_SHIFT_OPS = ["<<", ">>"]
_CMP_OPS = ["<", "<=", ">", ">=", "==", "!="]
_FLOAT_BINOPS = ["+", "-", "*"]


@dataclass(frozen=True)
class GenConfig:
    """Knobs of the structured generator (all bounds inclusive)."""

    n_global_scalars: Tuple[int, int] = (1, 3)
    n_global_arrays: Tuple[int, int] = (1, 2)
    #: array length is 2**k with k drawn from this range (masked indexing)
    array_pow2: Tuple[int, int] = (1, 3)
    n_functions: Tuple[int, int] = (0, 2)
    n_main_stmts: Tuple[int, int] = (3, 9)
    n_func_stmts: Tuple[int, int] = (1, 4)
    max_block_depth: int = 2
    max_trip: int = 5
    max_expr_depth: int = 3
    #: probability of float locals / float arithmetic statements
    p_float: float = 0.15
    allow_div: bool = True
    allow_shifts: bool = True
    allow_while: bool = True


@dataclass(frozen=True)
class GeneratedMiniC:
    """A generated program in structured (shrinkable) form."""

    seed: int
    config: GenConfig
    globals_src: Tuple[str, ...]
    functions_src: Tuple[str, ...]
    decls: Tuple[str, ...]          # main-local declarations (kept on shrink)
    main_stmts: Tuple[str, ...]     # shrinkable statement list
    tail: Tuple[str, ...]           # final prints (kept on shrink)
    features: frozenset

    @property
    def source(self) -> str:
        return render_minic(self)


def render_minic(
    prog: GeneratedMiniC, main_stmts: Optional[Sequence[str]] = None
) -> str:
    """Render a generated program, optionally with a statement subset
    (the shrinker re-renders candidate subsets through this)."""
    stmts = prog.main_stmts if main_stmts is None else tuple(main_stmts)
    parts: List[str] = []
    parts.extend(prog.globals_src)
    parts.append("")
    parts.extend(prog.functions_src)
    parts.append("int main() {")
    parts.extend("    " + d for d in prog.decls)
    parts.extend("    " + s for s in stmts)
    parts.extend("    " + t for t in prog.tail)
    parts.append("    return 0;")
    parts.append("}")
    return "\n".join(parts) + "\n"


class _Scope:
    """Names visible to the expression generator at one point."""

    def __init__(self):
        self.ints: List[str] = []
        self.floats: List[str] = []
        self.arrays: List[Tuple[str, int]] = []   # (name, power-of-two len)


class _MiniCGen:
    def __init__(self, seed: int, config: GenConfig):
        self.rng = random.Random(seed)
        self.cfg = config
        self.features: Set[str] = set()
        self._label = 0

    def _fresh(self, prefix: str) -> str:
        self._label += 1
        return f"{prefix}{self._label}"

    def _randint(self, lo_hi: Tuple[int, int]) -> int:
        return self.rng.randint(*lo_hi)

    # -- expressions -------------------------------------------------------

    def int_expr(self, scope: _Scope, depth: int = 0) -> str:
        r = self.rng
        if depth >= self.cfg.max_expr_depth or r.random() < 0.35:
            leaves = ["lit"]
            if scope.ints:
                leaves += ["var", "var"]
            if scope.arrays:
                leaves.append("arr")
            kind = r.choice(leaves)
            if kind == "lit":
                return str(r.randint(-99, 99))
            if kind == "var":
                return r.choice(scope.ints)
            name, size = r.choice(scope.arrays)
            self.features.add("array-read")
            return f"{name}[{self.index_expr(scope, size, depth + 1)}]"
        kind = r.random()
        a = self.int_expr(scope, depth + 1)
        b = self.int_expr(scope, depth + 1)
        if kind < 0.55:
            op = r.choice(_INT_BINOPS)
            return f"({a} {op} {b})"
        if kind < 0.70 and self.cfg.allow_shifts:
            op = r.choice(_SHIFT_OPS)
            self.features.add("shift")
            return f"({a} {op} ({b} & 7))"
        if kind < 0.80 and self.cfg.allow_div:
            op = r.choice(["/", "%"])
            self.features.add("div")
            return f"({a} {op} (({b}) | 1))"
        if kind < 0.93:
            op = r.choice(_CMP_OPS)
            self.features.add("compare")
            return f"({a} {op} {b})"
        op = r.choice(["&&", "||"])
        self.features.add("logical")
        return f"({a} {op} {b})"

    def index_expr(self, scope: _Scope, size: int, depth: int) -> str:
        """In-bounds index: mask onto a power-of-two length."""
        if self.rng.random() < 0.5:
            return str(self.rng.randrange(size))
        inner = self.int_expr(scope, max(depth, self.cfg.max_expr_depth - 1))
        return f"(({inner}) & {size - 1})"

    def float_expr(self, scope: _Scope, depth: int = 0) -> str:
        r = self.rng
        if depth >= 2 or not scope.floats or r.random() < 0.4:
            if scope.floats and r.random() < 0.6:
                return r.choice(scope.floats)
            if scope.ints and r.random() < 0.4:
                self.features.add("float-cast")
                return f"float({r.choice(scope.ints)})"
            return f"{r.uniform(-8.0, 8.0):.4f}"
        op = r.choice(_FLOAT_BINOPS)
        a = self.float_expr(scope, depth + 1)
        b = self.float_expr(scope, depth + 1)
        return f"({a} {op} {b})"

    # -- statements --------------------------------------------------------

    def statement(self, scope: _Scope, funcs: List[Tuple[str, int]],
                  depth: int) -> str:
        r = self.rng
        kinds = ["assign", "assign", "compound", "print"]
        if scope.arrays:
            kinds += ["array-write", "array-write"]
        if funcs:
            kinds += ["call", "call"]
        if depth < self.cfg.max_block_depth:
            kinds += ["if", "for"]
            if self.cfg.allow_while:
                kinds.append("while")
        if scope.floats and r.random() < self.cfg.p_float:
            kinds.append("float-assign")
        kind = r.choice(kinds)

        if kind == "assign":
            return f"{r.choice(scope.ints)} = {self.int_expr(scope)};"
        if kind == "compound":
            op = r.choice(["+=", "-=", "*="])
            self.features.add("compound-assign")
            return f"{r.choice(scope.ints)} {op} {self.int_expr(scope)};"
        if kind == "float-assign":
            self.features.add("float")
            return f"{r.choice(scope.floats)} = {self.float_expr(scope)};"
        if kind == "array-write":
            name, size = r.choice(scope.arrays)
            self.features.add("array-write")
            idx = self.index_expr(scope, size, 1)
            return f"{name}[{idx}] = {self.int_expr(scope)};"
        if kind == "call":
            fname, arity = r.choice(funcs)
            args = ", ".join(self.int_expr(scope, 1) for _ in range(arity))
            self.features.add("call")
            return f"{r.choice(scope.ints)} = {fname}({args});"
        if kind == "print":
            if r.random() < 0.15:
                self.features.add("printc")
                return f"printc((({self.int_expr(scope, 1)}) & 63) + 32);"
            return f"print({self.int_expr(scope, 1)});"
        if kind == "if":
            self.features.add("if")
            cond = self.int_expr(scope)
            then = self.statement(scope, funcs, depth + 1)
            if r.random() < 0.5:
                alt = self.statement(scope, funcs, depth + 1)
                return f"if ({cond}) {{ {then} }} else {{ {alt} }}"
            return f"if ({cond}) {{ {then} }}"
        if kind == "for":
            self.features.add("loop")
            if depth > 0:
                self.features.add("nested-loop")
            it = self._fresh("i")
            trip = r.randint(1, self.cfg.max_trip)
            body = self.statement(scope, funcs, depth + 1)
            extra = f" {r.choice(scope.ints)} += {it};" if scope.ints else ""
            return (f"for (int {it} = 0; {it} < {trip}; {it}++) "
                    f"{{ {body}{extra} }}")
        # counted while loop: dedicated down-counter guarantees termination
        self.features.add("while")
        w = self._fresh("w")
        trip = r.randint(1, self.cfg.max_trip)
        body = self.statement(scope, funcs, depth + 1)
        return (f"int {w} = {trip}; while ({w} > 0) "
                f"{{ {w} = {w} - 1; {body} }}")

    # -- functions ---------------------------------------------------------

    def function(
        self, name: str, funcs: List[Tuple[str, int]]
    ) -> Tuple[str, int]:
        r = self.rng
        arity = r.randint(1, 2)
        params = [f"a{k}" for k in range(arity)]
        scope = _Scope()
        scope.ints = list(params)
        lines = [f"int {name}({', '.join('int ' + p for p in params)}) {{"]
        n_locals = r.randint(0, 1)
        for _ in range(n_locals):
            v = self._fresh("t")
            lines.append(f"    int {v} = {self.int_expr(scope, 1)};")
            scope.ints.append(v)
        for _ in range(self._randint(self.cfg.n_func_stmts)):
            # function bodies reuse the statement generator one level deep
            lines.append("    " + self.statement(
                scope, funcs, self.cfg.max_block_depth - 1))
        lines.append(f"    return {self.int_expr(scope)};")
        lines.append("}")
        self.features.add("function")
        return "\n".join(lines) + "\n", arity

    # -- program -----------------------------------------------------------

    def program(self, seed: int) -> GeneratedMiniC:
        r = self.rng
        scope = _Scope()
        globals_src: List[str] = []

        for _ in range(self._randint(self.cfg.n_global_scalars)):
            g = self._fresh("g")
            globals_src.append(f"int {g} = {r.randint(-9, 9)};")
            scope.ints.append(g)
            self.features.add("global")
        for _ in range(self._randint(self.cfg.n_global_arrays)):
            name = self._fresh("arr")
            size = 1 << r.randint(*self.cfg.array_pow2)
            init = ", ".join(str(r.randint(-50, 50)) for _ in range(size))
            globals_src.append(f"int {name}[{size}] = {{{init}}};")
            scope.arrays.append((name, size))
            self.features.add("global-array")

        funcs: List[Tuple[str, int]] = []
        functions_src: List[str] = []
        for _ in range(self._randint(self.cfg.n_functions)):
            name = self._fresh("f")
            src, arity = self.function(name, list(funcs))
            functions_src.append(src)
            funcs.append((name, arity))

        decls: List[str] = []
        for _ in range(r.randint(1, 3)):
            v = self._fresh("v")
            decls.append(f"int {v} = {r.randint(-9, 9)};")
            scope.ints.append(v)
        if r.random() < self.cfg.p_float * 2:
            fv = self._fresh("x")
            decls.append(f"float {fv} = {r.uniform(-4.0, 4.0):.4f};")
            scope.floats.append(fv)
            self.features.add("float")

        main_stmts = [
            self.statement(scope, funcs, 0)
            for _ in range(self._randint(self.cfg.n_main_stmts))
        ]

        tail: List[str] = [f"print({v});" for v in scope.ints]
        tail += [f"print({v});" for v in scope.floats]
        for name, size in scope.arrays:
            it = self._fresh("p")
            tail.append(f"for (int {it} = 0; {it} < {size}; {it}++) "
                        f"{{ print({name}[{it}]); }}")

        return GeneratedMiniC(
            seed=seed,
            config=self.cfg,
            globals_src=tuple(globals_src),
            functions_src=tuple(functions_src),
            decls=tuple(decls),
            main_stmts=tuple(main_stmts),
            tail=tuple(tail),
            features=frozenset(self.features),
        )


def generate_minic(
    seed: int, config: GenConfig = GenConfig()
) -> GeneratedMiniC:
    """Generate one structured MiniC program; deterministic in
    ``(seed, config)``."""
    return _MiniCGen(seed, config).program(seed)


def minimize_minic(
    prog: GeneratedMiniC, still_fails: Callable[[str], bool]
) -> GeneratedMiniC:
    """Shrink ``prog.main_stmts`` to a minimal subset whose rendering
    still satisfies ``still_fails`` (which must treat any error —
    compile failure included — as "does not fail").

    Delegates the subset search to the reusable
    :func:`repro.fi.chaos.shrink_case` delta debugger.
    """
    from ..fi.chaos import shrink_case

    def predicate(stmts: Sequence[str]) -> bool:
        try:
            return still_fails(render_minic(prog, stmts))
        except Exception:   # noqa: BLE001 — broken subsets don't reproduce
            return False

    if not still_fails(prog.source):
        return prog
    kept = shrink_case(list(prog.main_stmts), predicate)
    return replace(prog, main_stmts=tuple(kept))
