"""Mutation testing of the protection passes: do the validators validate?

A differential oracle and an FI campaign are only trustworthy if they
*fail* when the protection they exercise is broken.  This harness
applies a catalog of systematic weakenings — **mutants** — to the
duplication pass, the Flowery patches, the knapsack planner and the
control-flow-checking pass, and asserts that every one of them is
*killed* by at least one oracle:

* **golden oracle** — the mutated pipeline mis-executes a fault-free
  run (a checker fires spuriously, or output diverges from the
  unprotected reference);
* **coverage oracle** — an exhaustive deterministic fault-injection
  sweep (one bit per dynamic index, via :mod:`repro.fi.engine`) shows
  a detection-rate drop or an SDC-rate rise beyond thresholds against
  the un-mutated baseline;
* **invariant oracle** — :func:`repro.protection.planner.validate_plan`
  rejects a corrupted protection plan;
* **codegen oracle** — a bit-identity check of the exec-compiled
  codegen dispatch tier against the naive ladders (golden runs,
  injection sweeps, and in-place module mutation), which must fail
  when the generator or its cache is weakened;
* **bitlive oracle** — an exhaustive flip of every (site, bit) pair the
  campaign pruner (:mod:`repro.analysis.bitlive`) classifies Benign on
  two witness builds, both layers, both value fault models: any status
  or output change kills the analysis weakening (DESIGN §17).

*Identity* pseudo-mutants rebuild each baseline from scratch and demand
bit-exact agreement of the sweep outcome counts — proving both that the
whole pipeline is deterministic and that the kill criteria have **zero
false positives** (an un-mutated pipeline always survives).

All sweeps are exhaustive over the dynamic injectable indices with a
fixed bit schedule, so every reported rate is an exact number, not a
sample: the kill thresholds below are calibrated against measured
mutant effect sizes (smallest real effect ~= +0.007 SDC for the
Flowery branch-patch mutant), not against sampling noise.

The default witness program was chosen so that every mutant family has
measurable effect: a loop over a global array, a helper function with
non-commutative arithmetic (shift/sub/rem), data-dependent branches,
and stores through computed addresses.  ``MutationConfig.source`` may
point at any MiniC program (e.g. from :mod:`repro.testgen.minic`).
"""

from __future__ import annotations

import contextlib
import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..analysis import bitlive as _bitlive
from ..backend.lower import lower_module
from ..execresult import RunStatus
from ..faultmodel import fault_bit_range
from ..fi.engine import run_injection_suite
from ..fi.outcomes import Outcome, classify_outcome
from ..frontend.codegen import compile_source
from ..interp.interpreter import IRInterpreter
from ..interp.layout import GlobalLayout
from ..interp import codegen as _ircodegen
from ..ir.instructions import Br, CondBr, Instruction, Store
from ..ir.module import Module
from ..ir.values import Constant
from ..ir.verifier import verify_module
from ..machine.machine import AsmMachine, compile_program
from ..protection.cfc import apply_cfc
from ..protection.duplication import (
    DuplicationInfo,
    duplicable_instructions,
    duplicate_module,
    sync_kind,
)
from ..protection.flowery import apply_flowery
from ..protection.planner import (
    ProtectionPlan,
    plan_protection,
    profile_module,
    validate_plan,
)

__all__ = [
    "WITNESS_SOURCE",
    "BITLIVE_WITNESS_SOURCE",
    "MUTANTS",
    "SMOKE_MUTANTS",
    "Mutant",
    "MutantResult",
    "MutationConfig",
    "MutationReport",
    "run_mutation_suite",
]

#: default witness program for the mutation suite (see module docstring)
WITNESS_SOURCE = """\
const int N = 8;
int acc = 0;
int data[8] = {12, -7, 33, 5, -21, 14, 9, -2};

int mix(int a, int b) {
    int t = (a ^ (b << 3)) + (b >> 1);
    if (t < 0) { t = 0 - t; }
    return ((t * 3) ^ (t >> 2)) % 8191;
}

int main() {
    int s = 1;
    for (int i = 0; i < N; i++) {
        int v = data[i & 7];
        s = mix(s, v + i);
        if ((s & 1) == 0) { s = s + (v * 3); } else { s = s - (v >> 2); }
        data[i & 7] = s & 255;
        acc += s;
        print(s);
    }
    print(acc);
    for (int j = 0; j < N; j++) { print(data[j & 7]); }
    return 0;
}
"""

#: second witness for the bitlive-pruner mutants: add/mul results that
#: feed *only* high-bit masks as SSA temps, so the carry-closure rule
#: is load-bearing.  Deliberately unprotected — under dup-100 every
#: value is observed fully by its checker compare, which hides the
#: masked-high-dead weakening (DESIGN §17).
BITLIVE_WITNESS_SOURCE = """\
const int N = 8;

int main() {
    int s = 5;
    int acc = 0;
    for (int i = 0; i < N; i++) {
        acc = acc + ((s + (i * 9)) & 64);
        acc = acc + ((s * (i + 3)) & 192);
        s = (s * 7 + 13) % 509;
        print(acc);
    }
    print(s);
    return 0;
}
"""


@dataclass(frozen=True)
class MutationConfig:
    """Shape of one mutation-suite run."""

    source: str = WITNESS_SOURCE
    #: coverage kill: baseline detected-rate minus mutant detected-rate
    det_drop_threshold: float = 0.015
    #: coverage kill: mutant sdc-rate minus baseline sdc-rate
    sdc_rise_threshold: float = 0.005
    #: profiling campaign feeding the knapsack planner baselines
    profile_campaigns: int = 150
    profile_seed: int = 1
    #: step budget = max(floor, golden dyn_total x factor)
    max_steps_floor: int = 20_000
    max_steps_factor: int = 4
    #: how many of the hottest instructions the skip-chain mutant drops
    hot_chain_len: int = 5

    def thresholds_doc(self) -> dict:
        return {
            "det_drop": self.det_drop_threshold,
            "sdc_rise": self.sdc_rise_threshold,
        }


@dataclass(frozen=True)
class Mutant:
    """One catalogued weakening of the protection pipeline."""

    name: str
    kind: str           # checker | shadow | selection | flowery | plan | codegen | cfc | pruner | identity
    oracle: str         # golden | coverage | invariant | codegen | bitlive | identity
    baseline: str       # dup-ir | flowery-asm | plan-ir | cfc-ir | none
    description: str
    build: Callable[["_Context"], object]
    #: identity pseudo-mutants must *survive*; everything else must die
    expect_killed: bool = True
    #: fault model the coverage/identity sweep injects under — CFC
    #: weakenings only show up under control-flow faults
    fault_model: str = "seu"


@dataclass
class MutantResult:
    """Verdict for one mutant."""

    name: str
    kind: str
    oracle: str
    baseline: str
    expect_killed: bool
    killed: bool
    killed_by: str      # which oracle actually fired ('' if survived)
    detail: str
    fault_model: str = "seu"
    metrics: Dict[str, float] = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.killed == self.expect_killed

    def to_doc(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "oracle": self.oracle,
            "baseline": self.baseline,
            "expect_killed": self.expect_killed,
            "killed": self.killed,
            "killed_by": self.killed_by,
            "ok": self.ok,
            "fault_model": self.fault_model,
            "detail": self.detail,
            "metrics": {k: round(v, 6) for k, v in self.metrics.items()},
            "elapsed_s": round(self.elapsed_s, 3),
        }


@dataclass
class MutationReport:
    """Aggregate kill matrix for one suite run."""

    results: List[MutantResult]
    witness_sha256: str
    config: MutationConfig
    elapsed_s: float = 0.0

    @property
    def survivors(self) -> List[str]:
        return [r.name for r in self.results if r.expect_killed and not r.killed]

    @property
    def false_kills(self) -> List[str]:
        return [r.name for r in self.results if not r.expect_killed and r.killed]

    @property
    def ok(self) -> bool:
        return not self.survivors and not self.false_kills

    def to_doc(self) -> dict:
        return {
            "schema": "mutate/1",
            "witness_sha256": self.witness_sha256,
            "thresholds": self.config.thresholds_doc(),
            "mutants": [r.to_doc() for r in self.results],
            "summary": {
                "total": len(self.results),
                "expected_killed": sum(r.expect_killed for r in self.results),
                "killed": sum(r.killed for r in self.results),
                "survivors": self.survivors,
                "false_kills": self.false_kills,
                "ok": self.ok,
                "elapsed_s": round(self.elapsed_s, 2),
            },
        }

    def render(self) -> str:
        lines = [
            f"{'mutant':30s} {'oracle':9s} {'verdict':9s} detail",
            "-" * 100,
        ]
        for r in self.results:
            verdict = ("killed" if r.killed else "SURVIVED") if r.expect_killed \
                else ("FALSE-KILL" if r.killed else "survived")
            lines.append(
                f"{r.name:30s} {r.killed_by or r.oracle:9s} {verdict:9s} {r.detail}"
            )
        lines.append("-" * 100)
        lines.append(
            f"{len(self.results)} mutants: "
            f"{sum(r.expect_killed and r.killed for r in self.results)} killed, "
            f"{len(self.survivors)} survivors, "
            f"{len(self.false_kills)} false kills "
            f"({self.elapsed_s:.1f}s)"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# build helpers


class _Context:
    """Caches the expensive shared state of one suite run: the reference
    execution, the profiling campaign, the plan-70 selection and the
    per-baseline exhaustive sweeps."""

    def __init__(self, config: MutationConfig):
        self.config = config
        self.ref_module = compile_source(config.source, "witness")
        self.ref_layout = GlobalLayout(self.ref_module)
        golden = IRInterpreter(self.ref_module, layout=self.ref_layout).run(
            profile=True
        )
        if golden.status is not RunStatus.OK:
            raise ValueError(
                f"witness program does not run clean: {golden.status}"
            )
        self.reference_output = golden.output
        self.dyn_counts: Dict[int, int] = dict(golden.per_inst_counts or {})
        self.full: Set[int] = {
            i.iid for i in duplicable_instructions(self.ref_module)
        }
        self._profile = None
        self._plan70: Optional[ProtectionPlan] = None
        self._baselines: Dict[Tuple[str, str],
                              Tuple[Dict[str, int], object]] = {}
        self._bitlive_builds: Optional[Tuple] = None

    def fresh_module(self) -> Module:
        return compile_source(self.config.source, "witness")

    @property
    def profile(self):
        if self._profile is None:
            self._profile = profile_module(
                self.ref_module,
                n_campaigns=self.config.profile_campaigns,
                seed=self.config.profile_seed,
                layout=self.ref_layout,
            )
        return self._profile

    @property
    def plan70(self) -> ProtectionPlan:
        if self._plan70 is None:
            self._plan70 = plan_protection(self.ref_module, self.profile, 70)
        return self._plan70

    @property
    def bitlive_builds(self) -> Tuple:
        """Witness builds for the bitlive-pruner oracle: the dup-100
        default witness (checker shadowing matters) plus the unprotected
        carry witness (carry closure matters)."""
        if self._bitlive_builds is None:
            carry_module = compile_source(
                BITLIVE_WITNESS_SOURCE, "bitlive-witness")
            verify_module(carry_module)
            carry_layout = GlobalLayout(carry_module)
            carry_compiled = compile_program(
                lower_module(carry_module, carry_layout).flatten())
            self._bitlive_builds = (
                ("dup",) + _build(self),
                ("carry", carry_module, carry_layout, carry_compiled),
            )
        return self._bitlive_builds

    def hottest(self, n: int) -> Set[int]:
        ranked = sorted(self.full, key=lambda i: (-self.dyn_counts.get(i, 0), i))
        return set(ranked[:n])

    def baseline(self, name: str, fault_model: str = "seu"):
        key = (name, fault_model)
        if key not in self._baselines:
            built = _BASELINE_BUILDERS[name](self)
            layer = name.rsplit("-", 1)[1]
            counts, golden = _sweep(self, built, layer,
                                    fault_model=fault_model)
            if counts is None:
                raise ValueError(
                    f"baseline {name} failed its own golden run: "
                    f"{golden.status}"
                )
            self._baselines[key] = (counts, golden)
        return self._baselines[key]


def _build(
    ctx: _Context,
    *,
    selected: Optional[Set[int]] = None,
    store_mode: str = "lazy",
    flowery: bool = False,
    branch_patch: bool = True,
    cmp_patch: bool = True,
    surgery: Optional[Callable[[Module, DuplicationInfo], None]] = None,
):
    """One protected pipeline build: duplicate (+Flowery) (+surgery),
    verify, lay out, lower, assemble."""
    module = ctx.fresh_module()
    info = duplicate_module(module, protected=selected, store_mode=store_mode)
    if flowery:
        apply_flowery(module, info, branch_patch=branch_patch,
                      cmp_patch=cmp_patch)
    if surgery is not None:
        surgery(module, info)
    verify_module(module)
    layout = GlobalLayout(module)
    compiled = compile_program(lower_module(module, layout).flatten())
    return module, layout, compiled


def _build_cfc(ctx: _Context, weakness: Optional[str] = None):
    """A CFC-only pipeline build (no duplication): apply the signature
    pass (optionally weakened), verify, lay out, lower, assemble."""
    module = ctx.fresh_module()
    apply_cfc(module, weakness=weakness)
    verify_module(module)
    layout = GlobalLayout(module)
    compiled = compile_program(lower_module(module, layout).flatten())
    return module, layout, compiled


_BASELINE_BUILDERS: Dict[str, Callable[[_Context], object]] = {
    "dup-ir": lambda ctx: _build(ctx),
    "flowery-asm": lambda ctx: _build(ctx, flowery=True, store_mode="eager"),
    "plan-ir": lambda ctx: _build(ctx, selected=set(ctx.plan70.selected)),
    "cfc-ir": lambda ctx: _build_cfc(ctx),
}


def _sweep(ctx: _Context, built, layer: str, fault_model: str = "seu"):
    """Exhaustive deterministic sweep: one injection per dynamic index,
    bit schedule ``(idx*13 + 7) % fault_bit_range``.  Returns ``(outcome
    counts, golden)`` — counts is None when the golden run itself
    fails."""
    module, layout, compiled = built
    if layer == "ir":
        golden = IRInterpreter(module, layout=layout).run()
        kwargs = dict(module=module, layout=layout)
    else:
        golden = AsmMachine(compiled, layout).run()
        kwargs = dict(program=compiled, layout=layout)
    if golden.status is not RunStatus.OK or golden.output != ctx.reference_output:
        return None, golden
    max_steps = max(
        ctx.config.max_steps_floor,
        golden.dyn_total * ctx.config.max_steps_factor,
    )
    counts = {o.value: 0 for o in Outcome}

    def emit(tag, res):
        counts[classify_outcome(res, golden.output).value] += 1

    bit_range = fault_bit_range(fault_model)
    samples = [
        (k, idx, (idx * 13 + 7) % bit_range)
        for k, idx in enumerate(range(golden.dyn_injectable))
    ]
    run_injection_suite(layer, samples, max_steps, emit=emit,
                        fault_model=fault_model, **kwargs)
    return counts, golden


def _rates(counts: Dict[str, int]) -> Dict[str, float]:
    n = sum(counts.values()) or 1
    return {k: v / n for k, v in counts.items()}


# ---------------------------------------------------------------------------
# surgeries (mutations applied after duplication)


def _drop_checkers(module: Module, info: DuplicationInfo, pred) -> int:
    """Remove every checker (comparison + conditional branch) whose
    ``(CheckerInfo, sync instruction)`` satisfies ``pred``; control falls
    straight through to the continuation block."""
    dropped = 0
    for cid, cinfo in info.checkers.items():
        sync = module.instruction_by_iid(cinfo.sync_iid)
        if not pred(cinfo, sync):
            continue
        checker = module.instruction_by_iid(cid)
        block = checker.parent
        term = block.terminator
        if not (isinstance(term, CondBr) and term.condition is checker):
            continue
        cont = term.then_block
        del block.instructions[block.index_of(checker):]
        br = Br(cont)
        br.attrs["checker"] = True
        module.assign_iid(br)
        block.append(br)
        dropped += 1
    if not dropped:
        raise ValueError("surgery matched no checkers — mutant is vacuous")
    return dropped


def _drop_sync_kind(kind: str):
    return lambda m, i: _drop_checkers(
        m, i, lambda ci, sync: sync_kind(sync) == kind
    )


def _drop_store_address_checkers(module: Module, info: DuplicationInfo):
    _drop_checkers(
        module, info,
        lambda ci, sync: isinstance(sync, Store)
        and isinstance(sync.pointer, Instruction)
        and sync.pointer.iid == ci.value_iid,
    )


def _unwire_checker_branches(module: Module, info: DuplicationInfo):
    """Keep every checker comparison but replace its conditional branch
    with a plain fall-through: detection computed, never acted on."""
    for cid in info.checkers:
        checker = module.instruction_by_iid(cid)
        block = checker.parent
        term = block.terminator
        if not (isinstance(term, CondBr) and term.condition is checker):
            continue
        block.instructions.pop()
        br = Br(term.then_block)
        br.attrs["checker"] = True
        module.assign_iid(br)
        block.append(br)


def _checker_compares_master(module: Module, info: DuplicationInfo):
    """Compare the master value against *itself* instead of its shadow —
    the checker is tautologically true."""
    for cid in info.checkers:
        checker = module.instruction_by_iid(cid)
        checker.operands[1] = checker.operands[0]


def _invert_checkers(module: Module, info: DuplicationInfo):
    """Swap each checker's branch targets: equality now jumps to the
    detect handler, so a fault-free run dies on the first checker."""
    for cid in info.checkers:
        checker = module.instruction_by_iid(cid)
        term = checker.parent.terminator
        if isinstance(term, CondBr) and term.condition is checker:
            term.then_block, term.else_block = term.else_block, term.then_block


_NONCOMMUTATIVE = frozenset(
    ["sub", "sdiv", "srem", "shl", "ashr", "lshr", "fsub", "fdiv"]
)


def _swap_shadow_operands(module: Module, info: DuplicationInfo):
    """Swap the operands of every non-commutative shadow: the shadow
    computes a different value, so checkers fire on fault-free runs."""
    swapped = 0
    for siid in info.shadow_of:
        shadow = module.instruction_by_iid(siid)
        if shadow.opcode in _NONCOMMUTATIVE and len(shadow.operands) == 2:
            shadow.operands[0], shadow.operands[1] = (
                shadow.operands[1], shadow.operands[0])
            swapped += 1
    if not swapped:
        raise ValueError("witness has no non-commutative shadows")


def _silence_detect_blocks(module: Module, info: DuplicationInfo):
    """Strip the DETECT intrinsic call out of every detect handler —
    detections degrade to hangs/DUEs instead of clean reports."""
    for fname, label in info.detect_blocks.items():
        block = module.functions[fname].block_by_label(label)
        block.instructions = [
            i for i in block.instructions if i.opcode != "call"
        ]


# ---------------------------------------------------------------------------
# plan mutants


def _anti_greedy_selection(ctx: _Context) -> Set[int]:
    """Fill the plan-70 budget with the *worst* benefit/cost items."""
    profile, plan = ctx.profile, ctx.plan70
    items = [
        (iid, float(profile.sdc_counts.get(iid, 0)),
         profile.dyn_counts.get(iid, 0))
        for iid in sorted(ctx.full)
    ]
    ranked = sorted(
        items,
        key=lambda it: ((it[1] / it[2]) if it[2] else float("inf"),
                        -it[2], it[0]),
    )
    chosen: Set[int] = set()
    remaining = plan.budget
    for iid, _benefit, cost in ranked:
        if 0 < cost <= remaining:
            chosen.add(iid)
            remaining -= cost
    return chosen


def _busted_budget_plan(ctx: _Context) -> ProtectionPlan:
    """A fabricated plan whose bookkeeping lies: claims less spend than
    its selection costs and smuggles in a non-duplicable iid."""
    plan = ctx.plan70
    bogus_iid = max(
        (i.iid for f in ctx.ref_module.functions.values()
         if not f.is_declaration for b in f.blocks for i in b.instructions),
        default=0,
    ) + 1000
    return ProtectionPlan(
        level=plan.level,
        selected=set(plan.selected) | {bogus_iid},
        budget=plan.budget,
        spent=max(0, plan.spent - 1),
        total_cost=plan.total_cost,
    )


# ---------------------------------------------------------------------------
# codegen-tier weakenings (simulator mutants, not pipeline surgeries)
#
# These patch the IR codegen subsystem itself and are judged by the
# codegen oracle: the generated-code tier must stay bit-identical to
# the naive ladders on golden runs, under injection, and across
# in-place module mutation.  A weakened generator/cache that survives
# all three comparisons would mean the equivalence suite tests nothing.


@contextlib.contextmanager
def _patched(obj, name, value):
    orig = getattr(obj, name)
    setattr(obj, name, value)
    try:
        yield
    finally:
        setattr(obj, name, orig)


def _stale_cache_patch(ctx: _Context):
    """Break fingerprint-based invalidation: the codegen cache keeps
    serving stale generated code after in-place module mutation."""
    return _patched(_ircodegen, "_fingerprint", lambda module: ("stale",))


def _wrong_operand_patch(ctx: _Context):
    """Inline the wrong literal for integer constants (low bit flipped):
    the classic specializer bug of baking in a stale/mistranscribed
    operand value."""
    orig = _ircodegen._Emitter.operand

    def wrong(self, v):
        if isinstance(v, Constant) and type(v.value) is int and v.value:
            return f"({v.value ^ 1})"
        return orig(self, v)

    return _patched(_ircodegen._Emitter, "operand", wrong)


def _dropped_flip_patch(ctx: _Context):
    """Emit injection sites without the flip hook: golden runs are
    unaffected, but armed injections silently never land in generated
    code."""

    def no_flip(self, sb, inst, expr):
        iid = inst.iid
        sb.line(f"t{iid} = {expr}")
        sb.line("inj += 1")
        self.local.add(iid)
        if iid in self.escaping:
            sb.line(f"t[{iid}] = t{iid}")

    return _patched(_ircodegen._Emitter, "emit_value", no_flip)


def _sig_codegen(res) -> tuple:
    return (res.status.value, res.output, res.dyn_total,
            res.dyn_injectable, res.trap_kind, res.injected,
            res.injected_iid)


def _eval_codegen(ctx: _Context, mutant: Mutant):
    """Bit-identity check of the codegen tier against naive, run with
    the mutant's patch applied: golden run, a spread injection sweep,
    and a mutate-in-place/rerun cycle (stale-cache detector)."""
    with mutant.build(ctx):
        def run(module, layout, dispatch, **kw):
            return IRInterpreter(module, layout=layout,
                                 max_steps=kw.pop("max_steps", 100_000),
                                 dispatch=dispatch).run(**kw)

        module = ctx.fresh_module()
        layout = GlobalLayout(module)
        naive = run(module, layout, "naive")
        codegen = run(module, layout, "codegen")
        if _sig_codegen(naive) != _sig_codegen(codegen):
            return True, "codegen", (
                f"golden run diverged from naive: "
                f"status {codegen.status.value} vs {naive.status.value}, "
                f"output[:40] {codegen.output[:40]!r} vs "
                f"{naive.output[:40]!r}, dyn_total {codegen.dyn_total} vs "
                f"{naive.dyn_total}"), {}
        n_inj = naive.dyn_injectable
        ms = max(20_000, naive.dyn_total * 4)
        sites = sorted({0, 1, n_inj // 4, n_inj // 2,
                        3 * n_inj // 4, n_inj - 1})
        mismatches = runs = 0
        first = ""
        for idx in sites:
            for bit in (0, 17, 63):
                a = run(module, layout, "naive", inject_index=idx,
                        inject_bit=bit, max_steps=ms)
                b = run(module, layout, "codegen", inject_index=idx,
                        inject_bit=bit, max_steps=ms)
                runs += 1
                if _sig_codegen(a) != _sig_codegen(b):
                    mismatches += 1
                    if not first:
                        first = f"idx={idx} bit={bit}"
        metrics = {"injection_runs": float(runs),
                   "injection_mismatches": float(mismatches)}
        if mismatches:
            return True, "codegen", (
                f"{mismatches}/{runs} injections diverged from naive "
                f"(first at {first})"), metrics
        # in-place mutation: the cache must regenerate, not serve stale
        m2 = ctx.fresh_module()
        l2 = GlobalLayout(m2)
        run(m2, l2, "codegen")
        duplicate_module(m2)
        after_cg = run(m2, l2, "codegen")
        after_naive = run(m2, l2, "naive")
        if _sig_codegen(after_cg) != _sig_codegen(after_naive):
            return True, "codegen", (
                "stale generated code served after in-place module "
                f"mutation: dyn_total {after_cg.dyn_total} != naive "
                f"{after_naive.dyn_total}"), metrics
        return False, "codegen", (
            f"bit-identical to naive: golden + {runs} injections + "
            "mutate/rerun cycle"), metrics


# ---------------------------------------------------------------------------
# bitlive-pruner weakenings (analysis mutants, not pipeline surgeries)
#
# These patch the transfer hooks of the bit-liveness analysis
# (repro.analysis.bitlive) and are judged by the bitlive oracle: every
# (site, bit) pair the weakened analysis classifies Benign is actually
# flipped on the witness builds, and any status or output change is a
# kill.  A weakening that survives would mean the campaign pruner can
# silently drop non-benign faults (DESIGN §17).


def _masked_high_patch(ctx: _Context):
    """Drop the carry closure: operand bits above the highest observed
    result bit of an add/sub/mul are treated as dead, ignoring that a
    low-bit flip can carry into an observed high bit."""
    return _patched(_bitlive, "_carry_close", lambda m: m)


def _ignore_call_clobbers_patch(ctx: _Context):
    """Calls and returns stop being all-live boundaries: values live
    across a call are classified by local uses only."""
    return _patched(_bitlive, "_call_boundary", lambda: 0)


def _flags_always_dead_patch(ctx: _Context):
    """Condition codes read no flags: every compare's flag production
    looks unobserved, so compared values go dead."""
    return _patched(_bitlive, "_cc_reads", lambda cc: 0)


def _skip_checker_shadow_patch(ctx: _Context):
    """Checker compares observe nothing: checker-shadowed bits are
    classified Benign even though flipping them raises a detection."""
    return _patched(_bitlive, "_checker_observes", lambda user: False)


def _eval_bitlive(ctx: _Context, mutant: Mutant):
    """Exhaustive benign-flip oracle over both witness builds, both
    layers and both value fault models, with the mutant's analysis
    patch applied.  Kill = any Benign-classified pair whose injected
    run is not status-OK with golden-identical output.  Killed mutants
    stop at the first combination with violations; the identity row
    scans everything."""
    from ..fi.prune import verify_benign

    pairs = violations = 0
    first = ""
    with mutant.build(ctx):
        for tag, module, layout, compiled in ctx.bitlive_builds:
            for layer in ("ir", "asm"):
                kwargs = (dict(module=module, layout=layout)
                          if layer == "ir"
                          else dict(program=compiled, layout=layout))
                for fm in ("seu", "set"):
                    rep = verify_benign(layer, fault_model=fm, **kwargs)
                    pairs += rep["pairs"]
                    bad = rep["violations"]
                    violations += len(bad)
                    if bad and not first:
                        dyn, bit, status, trap = bad[0]
                        first = (f"{tag}/{layer}/{fm} dyn={dyn} "
                                 f"bit={bit} -> {status}"
                                 + (f"/{trap}" if trap else ""))
                if violations:
                    break
            if violations:
                break
    metrics = {"pairs": float(pairs), "violations": float(violations)}
    if violations:
        return True, "bitlive", (
            f"{violations} benign-classified flips changed execution "
            f"over {pairs} pairs (first: {first})"), metrics
    return False, "bitlive", (
        f"all {pairs} benign-classified flips ran status-OK with "
        "golden-identical output"), metrics


# ---------------------------------------------------------------------------
# the catalog

MUTANTS: Tuple[Mutant, ...] = (
    # -- checker placement ---------------------------------------------------
    Mutant("dup-drop-store-checkers", "checker", "coverage", "dup-ir",
           "remove every checker guarding a store",
           lambda ctx: _build(ctx, surgery=_drop_sync_kind("store"))),
    Mutant("dup-drop-branch-checkers", "checker", "coverage", "dup-ir",
           "remove every checker guarding a conditional branch",
           lambda ctx: _build(ctx, surgery=_drop_sync_kind("branch"))),
    Mutant("dup-drop-call-checkers", "checker", "coverage", "dup-ir",
           "remove every checker guarding a call argument",
           lambda ctx: _build(ctx, surgery=_drop_sync_kind("call"))),
    Mutant("dup-drop-ret-checkers", "checker", "coverage", "dup-ir",
           "remove every checker guarding a return value",
           lambda ctx: _build(ctx, surgery=_drop_sync_kind("ret"))),
    Mutant("dup-drop-store-addr-checkers", "checker", "coverage", "dup-ir",
           "remove checkers on store *addresses* (keep value checkers)",
           lambda ctx: _build(ctx, surgery=_drop_store_address_checkers)),
    # -- checker semantics ---------------------------------------------------
    Mutant("dup-checker-branch-unwired", "checker", "coverage", "dup-ir",
           "compute every checker comparison but never branch on it",
           lambda ctx: _build(ctx, surgery=_unwire_checker_branches)),
    Mutant("dup-checker-compares-master", "checker", "coverage", "dup-ir",
           "compare each checked value against itself, not its shadow",
           lambda ctx: _build(ctx, surgery=_checker_compares_master)),
    Mutant("dup-checker-inverted", "checker", "golden", "none",
           "swap checker branch targets (equal goes to detect)",
           lambda ctx: _build(ctx, surgery=_invert_checkers)),
    Mutant("dup-detect-silent", "checker", "coverage", "dup-ir",
           "strip the DETECT call out of every detect handler",
           lambda ctx: _build(ctx, surgery=_silence_detect_blocks)),
    # -- shadow computation --------------------------------------------------
    Mutant("dup-shadow-operands-swapped", "shadow", "golden", "none",
           "swap operands of every non-commutative shadow instruction",
           lambda ctx: _build(ctx, surgery=_swap_shadow_operands)),
    # -- protection selection ------------------------------------------------
    Mutant("dup-skip-hot-chain", "selection", "coverage", "dup-ir",
           "leave the hottest instruction chain unprotected",
           lambda ctx: _build(
               ctx,
               selected=ctx.full - ctx.hottest(ctx.config.hot_chain_len))),
    Mutant("dup-shadow-skips-loads", "selection", "coverage", "dup-ir",
           "never shadow loads (memory traffic unprotected)",
           lambda ctx: _build(
               ctx,
               selected={iid for iid in ctx.full
                         if ctx.ref_module.instruction_by_iid(iid).opcode
                         != "load"})),
    # -- Flowery patches -----------------------------------------------------
    Mutant("flowery-no-branch-patch", "flowery", "coverage", "flowery-asm",
           "disable the postponed-branch-check patch (§6.2)",
           lambda ctx: _build(ctx, flowery=True, store_mode="eager",
                              branch_patch=False)),
    Mutant("flowery-no-anticmp", "flowery", "coverage", "flowery-asm",
           "disable the anti-comparison-duplication patch (§6.3)",
           lambda ctx: _build(ctx, flowery=True, store_mode="eager",
                              cmp_patch=False)),
    Mutant("flowery-lazy-store", "flowery", "coverage", "flowery-asm",
           "revert eager stores to lazy check-then-store (§6.1)",
           lambda ctx: _build(ctx, flowery=True, store_mode="lazy")),
    # -- knapsack planner ----------------------------------------------------
    Mutant("plan-empty-selection", "plan", "coverage", "plan-ir",
           "planner returns the empty selection",
           lambda ctx: _build(ctx, selected=set())),
    Mutant("plan-anti-greedy", "plan", "coverage", "plan-ir",
           "fill the budget with the worst benefit/cost items",
           lambda ctx: _build(ctx, selected=_anti_greedy_selection(ctx))),
    Mutant("plan-busted-budget", "plan", "invariant", "none",
           "plan bookkeeping lies about spend and selects a bogus iid",
           _busted_budget_plan),
    # -- codegen dispatch tier -----------------------------------------------
    Mutant("codegen-stale-cache", "codegen", "codegen", "none",
           "codegen cache serves stale code after in-place mutation",
           _stale_cache_patch),
    Mutant("codegen-wrong-operand-literal", "codegen", "codegen", "none",
           "generator inlines the wrong operand literal (low bit flip)",
           _wrong_operand_patch),
    Mutant("codegen-dropped-flip-hook", "codegen", "codegen", "none",
           "generated source omits the injection flip hook",
           _dropped_flip_patch),
    # -- control-flow checking -----------------------------------------------
    Mutant("cfc-dropped-update", "cfc", "golden", "none",
           "signature checks kept but no signature updates: every "
           "fault-free run false-detects at the first check",
           lambda ctx: _build_cfc(ctx, weakness="dropped-update")),
    Mutant("cfc-unchecked-backedge", "cfc", "coverage", "cfc-ir",
           "loop back-edge targets get no entry check (wrong-iteration "
           "redirects go unnoticed)",
           lambda ctx: _build_cfc(ctx, weakness="unchecked-backedge"),
           fault_model="cf"),
    Mutant("cfc-constant-signature", "cfc", "coverage", "cfc-ir",
           "every block shares signature 1: checks are vacuously true "
           "for any control-flow corruption",
           lambda ctx: _build_cfc(ctx, weakness="constant-signature"),
           fault_model="cf"),
    # -- bitlive pruner (campaign pre-pruning analysis) ----------------------
    Mutant("bitlive-masked-high-dead", "pruner", "bitlive", "none",
           "drop carry closure: masked-high operand bits of add/sub/mul "
           "classified dead", _masked_high_patch),
    Mutant("bitlive-ignore-call-clobbers", "pruner", "bitlive", "none",
           "calls/returns no longer all-live boundaries",
           _ignore_call_clobbers_patch),
    Mutant("bitlive-flags-always-dead", "pruner", "bitlive", "none",
           "condition codes read no flags: compared values go dead",
           _flags_always_dead_patch),
    Mutant("bitlive-skip-checker-shadow", "pruner", "bitlive", "none",
           "checker compares observe nothing: shadowed bits Benign",
           _skip_checker_shadow_patch),
    # -- identity pseudo-mutants (must survive) ------------------------------
    Mutant("identity-dup", "identity", "identity", "dup-ir",
           "rebuild the dup-100 baseline unchanged (zero-false-kill proof)",
           lambda ctx: _build(ctx), expect_killed=False),
    Mutant("identity-flowery", "identity", "identity", "flowery-asm",
           "rebuild the Flowery baseline unchanged (zero-false-kill proof)",
           lambda ctx: _build(ctx, flowery=True, store_mode="eager"),
           expect_killed=False),
    Mutant("identity-plan70", "identity", "identity", "plan-ir",
           "rebuild the plan-70 baseline unchanged (zero-false-kill proof)",
           lambda ctx: _build(ctx, selected=set(ctx.plan70.selected)),
           expect_killed=False),
    Mutant("identity-codegen", "identity", "codegen", "none",
           "run the codegen oracle unpatched (zero-false-kill proof)",
           lambda ctx: contextlib.nullcontext(), expect_killed=False),
    Mutant("identity-cfc", "identity", "identity", "cfc-ir",
           "rebuild the CFC baseline unchanged, swept under cf faults "
           "(zero-false-kill proof)",
           lambda ctx: _build_cfc(ctx), expect_killed=False,
           fault_model="cf"),
    Mutant("identity-bitlive", "identity", "bitlive", "none",
           "run the exhaustive benign-flip oracle unpatched "
           "(zero-false-kill proof: the sound analysis has no violations)",
           lambda ctx: contextlib.nullcontext(), expect_killed=False),
)

#: fast subset for CI smoke runs: one golden kill, one structural kill,
#: one coverage kill, one invariant kill, one identity row
SMOKE_MUTANTS: Tuple[str, ...] = (
    "dup-checker-inverted",
    "dup-shadow-operands-swapped",
    "dup-drop-store-checkers",
    "dup-checker-branch-unwired",
    "plan-busted-budget",
    "codegen-dropped-flip-hook",
    "cfc-dropped-update",
    "bitlive-skip-checker-shadow",
    "identity-dup",
)


# ---------------------------------------------------------------------------
# evaluation


def _eval_golden(ctx: _Context, mutant: Mutant) -> Tuple[bool, str, Dict]:
    module, layout, compiled = mutant.build(ctx)
    res = IRInterpreter(module, layout=layout).run()
    if res.status is not RunStatus.OK:
        return True, (f"fault-free run died: {res.status.value}"
                      f"/{res.trap_kind}"), {}
    if res.output != ctx.reference_output:
        return True, "fault-free output diverged from reference", {}
    return False, "fault-free run survived the golden oracle", {}


def _eval_coverage(ctx: _Context, mutant: Mutant):
    base_counts, _ = ctx.baseline(mutant.baseline, mutant.fault_model)
    layer = mutant.baseline.rsplit("-", 1)[1]
    built = mutant.build(ctx)
    counts, golden = _sweep(ctx, built, layer,
                            fault_model=mutant.fault_model)
    if counts is None:
        # the weakening broke fault-free semantics outright — that is a
        # kill too, credited to the golden oracle
        return True, "golden", (
            f"mutant build failed its golden run: {golden.status.value}"
        ), {}
    base, mut = _rates(base_counts), _rates(counts)
    det_drop = base["detected"] - mut["detected"]
    sdc_rise = mut["sdc"] - base["sdc"]
    metrics = {
        "detected_base": base["detected"], "detected_mut": mut["detected"],
        "sdc_base": base["sdc"], "sdc_mut": mut["sdc"],
        "det_drop": det_drop, "sdc_rise": sdc_rise,
        "samples": float(sum(counts.values())),
    }
    killed = (det_drop > ctx.config.det_drop_threshold
              or sdc_rise > ctx.config.sdc_rise_threshold)
    detail = (f"detected {base['detected']:.3f}->{mut['detected']:.3f} "
              f"({-det_drop:+.3f}), sdc {base['sdc']:.3f}->{mut['sdc']:.3f} "
              f"({sdc_rise:+.3f})")
    return killed, "coverage", detail, metrics


def _eval_invariant(ctx: _Context, mutant: Mutant):
    plan = mutant.build(ctx)
    violations = validate_plan(plan, ctx.ref_module, ctx.profile)
    if violations:
        return True, "; ".join(violations), {
            "violations": float(len(violations))}
    return False, "validate_plan reported no violations", {}


def _eval_identity(ctx: _Context, mutant: Mutant):
    """Exact-equality re-run of a baseline: any difference at all — one
    flipped outcome, a golden mismatch, a plan violation — is a (false)
    kill."""
    base_counts, _ = ctx.baseline(mutant.baseline, mutant.fault_model)
    layer = mutant.baseline.rsplit("-", 1)[1]
    built = mutant.build(ctx)
    counts, golden = _sweep(ctx, built, layer,
                            fault_model=mutant.fault_model)
    if counts is None:
        return True, "golden", (
            f"identity rebuild failed golden: {golden.status.value}"), {}
    if mutant.baseline == "plan-ir":
        violations = validate_plan(ctx.plan70, ctx.ref_module, ctx.profile)
        if violations:
            return True, "invariant", "; ".join(violations), {}
    if counts != base_counts:
        diff = {k: counts[k] - base_counts.get(k, 0)
                for k in counts if counts[k] != base_counts.get(k, 0)}
        return True, "coverage", f"outcome counts drifted: {diff}", {}
    return False, "identity", (
        f"bit-exact: {sum(counts.values())} outcomes identical to baseline"
    ), {"samples": float(sum(counts.values()))}


def run_mutation_suite(
    config: MutationConfig = MutationConfig(),
    names: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> MutationReport:
    """Run the catalog (or the ``names`` subset) and build the kill
    matrix.  Deterministic end to end: same config -> same report."""
    known = {m.name for m in MUTANTS}
    if names is not None:
        unknown = set(names) - known
        if unknown:
            raise ValueError(f"unknown mutants: {sorted(unknown)}")
    chosen = [m for m in MUTANTS if names is None or m.name in set(names)]
    ctx = _Context(config)
    t_suite = time.monotonic()
    results: List[MutantResult] = []
    for mutant in chosen:
        t0 = time.monotonic()
        if mutant.oracle == "golden":
            killed, detail, metrics = _eval_golden(ctx, mutant)
            killed_by = "golden" if killed else ""
        elif mutant.oracle == "coverage":
            killed, killed_by, detail, metrics = _eval_coverage(ctx, mutant)
            killed_by = killed_by if killed else ""
        elif mutant.oracle == "invariant":
            killed, detail, metrics = _eval_invariant(ctx, mutant)
            killed_by = "invariant" if killed else ""
        elif mutant.oracle == "codegen":
            killed, killed_by, detail, metrics = _eval_codegen(ctx, mutant)
            killed_by = killed_by if killed else ""
        elif mutant.oracle == "bitlive":
            killed, killed_by, detail, metrics = _eval_bitlive(ctx, mutant)
            killed_by = killed_by if killed else ""
        elif mutant.oracle == "identity":
            killed, killed_by, detail, metrics = _eval_identity(ctx, mutant)
            killed_by = killed_by if killed else ""
        else:  # pragma: no cover - catalog is static
            raise ValueError(f"unknown oracle {mutant.oracle!r}")
        result = MutantResult(
            name=mutant.name, kind=mutant.kind, oracle=mutant.oracle,
            baseline=mutant.baseline, expect_killed=mutant.expect_killed,
            killed=killed, killed_by=killed_by, detail=detail,
            fault_model=mutant.fault_model,
            metrics=metrics, elapsed_s=time.monotonic() - t0,
        )
        results.append(result)
        if progress is not None:
            verdict = "killed" if killed else "survived"
            progress(f"{mutant.name}: {verdict} ({result.detail})")
    return MutationReport(
        results=results,
        witness_sha256=hashlib.sha256(config.source.encode()).hexdigest(),
        config=config,
        elapsed_s=time.monotonic() - t_suite,
    )
