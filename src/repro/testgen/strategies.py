"""Hypothesis strategies over the deterministic generators.

The property-based suites (``tests/test_crosslayer_properties.py``,
``tests/test_differential_layers.py``) used to carry their own inlined
grammars, which drifted apart from each other and from anything the
oracle/mutation harness could reuse.  These strategies are thin
wrappers over :func:`repro.testgen.minic.generate_minic` and
:func:`repro.testgen.irgen.generate_ir` — hypothesis draws only the
*seed*, the single program generator does the rest.  One generator, no
drift: any grammar extension lands in the property suites, the
differential oracle, and the mutation harness at once.

Importing this module requires ``hypothesis`` (a test dependency), so
it is deliberately **not** imported from ``repro.testgen.__init__`` —
runtime code never pays for it.
"""

from __future__ import annotations

from hypothesis import strategies as st

from .irgen import IRGenConfig, generate_ir
from .minic import GenConfig, generate_minic

__all__ = ["minic_programs", "minic_sources", "ir_modules", "SEED_RANGE"]

#: seed space the strategies draw from (shrinks toward small seeds)
SEED_RANGE = (0, 2**24 - 1)


def minic_programs(config: GenConfig = GenConfig()):
    """Strategy of :class:`~repro.testgen.minic.GeneratedMiniC`."""
    return st.integers(*SEED_RANGE).map(
        lambda seed: generate_minic(seed, config)
    )


def minic_sources(config: GenConfig = GenConfig()):
    """Strategy of MiniC source text."""
    return minic_programs(config).map(lambda p: p.source)


def ir_modules(config: IRGenConfig = IRGenConfig()):
    """Strategy of fresh direct-IR modules (safe to mutate in place)."""
    return st.integers(*SEED_RANGE).map(
        lambda seed: generate_ir(seed, config)
    )
