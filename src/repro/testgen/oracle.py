"""Differential oracle: one program, the full execution/protection matrix.

For a program factory (anything returning a fresh
:class:`~repro.ir.module.Module` per call — generated MiniC, direct-IR
generation, or a benchmark source), the oracle builds every protection
variant

    unprotected, dup30, dup50, dup70, dup100, flowery, cfc, dup100+cfc

and executes each at both layers (IR interpreter, asm machine) under
all three dispatch tiers (naive ladders, pre-decoded closures,
exec-compiled generated code) — an 8 x 2 x 3 = 48-run matrix.  Every run
must finish ``OK`` — a checker firing on a fault-free run is a protection
bug, not noise — and produce output bit-identical to the unprotected
IR golden run; within a layer every dispatch tier must additionally
agree with the first on the full result signature (status, output,
dynamic counters).

Partial levels use :func:`partial_selection` — a seeded arbitrary
subset of the duplicable instructions — rather than the profiling
planner: semantics preservation must hold for *every* subset, so
random subsets are the stronger (and much faster) test.  The planner
itself is validated separately by the mutation harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..backend.lower import lower_module
from ..execresult import ExecResult, RunStatus
from ..interp.interpreter import IRInterpreter
from ..interp.layout import GlobalLayout
from ..ir.module import Module
from ..ir.verifier import verify_module
from ..machine.machine import AsmMachine, compile_program
from ..protection.cfc import apply_cfc
from ..protection.duplication import duplicable_instructions, duplicate_module
from ..protection.flowery import apply_flowery

__all__ = [
    "ORACLE_VARIANTS",
    "OracleConfig",
    "OracleFailure",
    "OracleReport",
    "partial_selection",
    "run_differential_oracle",
]

ORACLE_VARIANTS = ("unprotected", "dup30", "dup50", "dup70", "dup100",
                   "flowery", "cfc", "dup100+cfc")

#: result fields that must agree across dispatch modes within a layer
_SIG_FIELDS = ("status", "output", "dyn_total", "dyn_injectable")


@dataclass(frozen=True)
class OracleConfig:
    """Shape of one oracle matrix run."""

    variants: Tuple[str, ...] = ORACLE_VARIANTS
    layers: Tuple[str, ...] = ("ir", "asm")
    dispatches: Tuple[str, ...] = ("naive", "decoded", "codegen")
    #: seed for the partial-selection subsets (per-variant derived)
    selection_seed: int = 0
    #: step budget = max(floor, unprotected dyn_total x factor)
    max_steps_floor: int = 200_000
    max_steps_factor: int = 64


@dataclass(frozen=True)
class OracleFailure:
    """One cell of the matrix that broke the bit-identity contract."""

    variant: str
    layer: str
    dispatch: str
    field: str                  # 'status' | 'output' | cross-dispatch field
    got: str
    want: str

    def describe(self) -> str:
        return (f"{self.variant}/{self.layer}/{self.dispatch}: {self.field} "
                f"got={self.got!r} want={self.want!r}")


@dataclass
class OracleReport:
    """Aggregate of one program's trip through the matrix."""

    name: str
    variants: Tuple[str, ...]
    runs: int = 0
    golden_output: str = ""
    failures: List[OracleFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_doc(self) -> dict:
        return {
            "name": self.name,
            "variants": list(self.variants),
            "runs": self.runs,
            "ok": self.ok,
            "failures": [vars(f).copy() for f in self.failures],
        }


def partial_selection(
    module: Module, fraction: float, seed: int
) -> Set[int]:
    """A seeded, size-``fraction`` subset of the duplicable instructions.

    Deterministic in ``(module shape, fraction, seed)``; used for the
    dup30/50/70 oracle variants (arbitrary subsets must preserve
    semantics, whatever the planner would have chosen).
    """
    iids = sorted(i.iid for i in duplicable_instructions(module))
    k = round(len(iids) * fraction)
    rng = random.Random(f"selection:{seed}:{fraction}")
    return set(rng.sample(iids, k))


def build_variant(
    make_module: Callable[[], Module], variant: str, seed: int = 0
):
    """(module, layout, compiled) for one protection variant, built from
    a fresh module (passes mutate in place)."""
    module = make_module()
    if variant != "unprotected":
        if variant == "flowery":
            info = duplicate_module(module, store_mode="eager")
            apply_flowery(module, info)
        elif variant == "cfc":
            apply_cfc(module)
        elif variant == "dup100+cfc":
            duplicate_module(module)
            apply_cfc(module)
        elif variant == "dup100":
            duplicate_module(module)
        elif variant.startswith("dup"):
            fraction = int(variant[3:]) / 100.0
            selected = partial_selection(module, fraction, seed)
            duplicate_module(module, protected=selected)
        else:
            raise ValueError(f"unknown oracle variant {variant!r}")
    verify_module(module)
    layout = GlobalLayout(module)
    compiled = compile_program(lower_module(module, layout).flatten())
    return module, layout, compiled


def _sig(res: ExecResult) -> Dict[str, str]:
    return {
        "status": res.status.value,
        "output": res.output,
        "dyn_total": str(res.dyn_total),
        "dyn_injectable": str(res.dyn_injectable),
    }


def run_differential_oracle(
    make_module: Callable[[], Module],
    name: str = "program",
    config: OracleConfig = OracleConfig(),
) -> OracleReport:
    """Execute the full variant x layer x dispatch matrix and diff it.

    ``make_module`` must return a *fresh* module on each call (e.g.
    ``lambda: compile_source(src)`` or ``lambda: generate_ir(seed)``).
    """
    report = OracleReport(name=name, variants=tuple(config.variants))

    golden_module = make_module()
    golden_layout = GlobalLayout(golden_module)
    golden = IRInterpreter(golden_module, layout=golden_layout).run()
    if golden.status is not RunStatus.OK:
        report.failures.append(OracleFailure(
            "unprotected", "ir", "decoded", "status",
            golden.status.value, RunStatus.OK.value))
        return report
    report.golden_output = golden.output
    max_steps = max(config.max_steps_floor,
                    golden.dyn_total * config.max_steps_factor)

    for variant in config.variants:
        module, layout, compiled = build_variant(
            make_module, variant, config.selection_seed)
        for layer in config.layers:
            by_dispatch: Dict[str, ExecResult] = {}
            for dispatch in config.dispatches:
                if layer == "ir":
                    sim = IRInterpreter(module, layout=layout,
                                        max_steps=max_steps,
                                        dispatch=dispatch)
                else:
                    sim = AsmMachine(compiled, layout, max_steps=max_steps,
                                     dispatch=dispatch)
                res = sim.run()
                report.runs += 1
                by_dispatch[dispatch] = res
                if res.status is not RunStatus.OK:
                    report.failures.append(OracleFailure(
                        variant, layer, dispatch, "status",
                        f"{res.status.value}/{res.trap_kind}",
                        RunStatus.OK.value))
                elif res.output != golden.output:
                    report.failures.append(OracleFailure(
                        variant, layer, dispatch, "output",
                        res.output[:160], golden.output[:160]))
            if len(by_dispatch) >= 2:
                ref_dispatch = config.dispatches[0]
                sa = _sig(by_dispatch[ref_dispatch])
                for dispatch in config.dispatches[1:]:
                    sb = _sig(by_dispatch[dispatch])
                    for fld in _SIG_FIELDS:
                        if sa[fld] != sb[fld]:
                            report.failures.append(OracleFailure(
                                variant, layer,
                                f"cross-dispatch:{dispatch}", fld,
                                sb[fld][:160], sa[fld][:160]))
                            break
    return report
