"""Seed-deterministic direct-IR program generation.

Builds modules straight through :class:`~repro.ir.builder.IRBuilder`,
bypassing the MiniC frontend, to exercise operand and addressing shapes
the frontend never emits: constant left operands, computed (masked)
gep indices, stores through computed pointers, i1 arithmetic via
``zext``, deep expression reuse, ``select`` chains and int/float casts.

The program shape is a dataflow soup over a global array plus a global
scalar, ending with every live value printed — always terminating
(straight-line), always in-bounds (indices are ``and``-masked onto a
power-of-two array), and deterministic in ``(seed, config)``.  Each
call to :func:`generate_ir` returns a *fresh* module, so callers can
hand it to in-place transformation passes freely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..ir import types as T
from ..ir.builder import IRBuilder
from ..ir.module import Module
from ..ir.types import function_type

__all__ = ["IRGenConfig", "generate_ir"]

_INT_OPS = ["add", "sub", "mul", "and", "or", "xor", "shl", "ashr", "lshr"]
_FP_OPS = ["fadd", "fsub", "fmul"]
_ICMP = ["eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ugt"]


@dataclass(frozen=True)
class IRGenConfig:
    """Knobs of the direct-IR generator."""

    n_ops: Tuple[int, int] = (4, 16)
    #: global array length (power of two — indices are masked onto it)
    array_len: int = 4
    #: probability a step stores a value back through a computed pointer
    p_store: float = 0.15


def generate_ir(seed: int, config: IRGenConfig = IRGenConfig()) -> Module:
    """Build one random straight-line module; deterministic in
    ``(seed, config)``; fresh module on every call."""
    assert config.array_len & (config.array_len - 1) == 0
    # string seeds hash deterministically in random.Random (sha512),
    # unlike tuples, whose hash() varies per process
    rng = random.Random(f"irgen:{seed}")
    module = Module(f"irgen{seed}")
    gvals = [rng.randint(-100, 100) for _ in range(config.array_len)]
    garr = module.global_var("data", T.array(T.I64, config.array_len), gvals)
    gscal = module.global_var("acc", T.I64, rng.randint(-9, 9))
    fn = module.add_function("main", function_type(T.VOID, []))
    b = IRBuilder(fn)
    b.set_block(b.new_block("entry"))

    int_vals: List = [b.i64(rng.randint(-50, 50)) for _ in range(2)]
    fp_vals: List = [b.f64(round(rng.uniform(-8.0, 8.0), 4))]
    mask = b.i64(config.array_len - 1)

    # seed with loads: constant geps plus the global scalar
    for i in range(config.array_len):
        int_vals.append(b.load(b.gep(garr, b.i64(i))))
    int_vals.append(b.load(gscal))

    def pick_int():
        return rng.choice(int_vals)

    n_ops = rng.randint(*config.n_ops)
    for _ in range(n_ops):
        kind = rng.choice(
            ["int", "int", "fp", "cmp", "sel", "cast", "gep-load"]
        )
        if kind == "int":
            # constant left operands included — the frontend always
            # canonicalises variables leftward, the backend must not rely
            # on that
            a = b.i64(rng.randint(-9, 9)) if rng.random() < 0.2 else pick_int()
            int_vals.append(b.binop(rng.choice(_INT_OPS), a, pick_int()))
        elif kind == "fp":
            a, c = rng.choice(fp_vals), rng.choice(fp_vals)
            fp_vals.append(b.binop(rng.choice(_FP_OPS), a, c))
        elif kind == "cmp":
            cmp_ = b.icmp(rng.choice(_ICMP), pick_int(), pick_int())
            if rng.random() < 0.3:
                # i1 arithmetic before widening
                cmp2 = b.icmp(rng.choice(_ICMP), pick_int(), pick_int())
                cmp_ = b.binop(rng.choice(["and", "or", "xor"]), cmp_, cmp2)
            int_vals.append(b.zext(cmp_, T.I64))
        elif kind == "sel":
            a, c = pick_int(), pick_int()
            int_vals.append(b.select(b.icmp("slt", a, c), a, c))
        elif kind == "cast":
            fp_vals.append(b.sitofp(pick_int()))
        else:
            # computed-pointer traffic: mask an arbitrary value onto the
            # array, optionally store through it, always load it back
            idx = b.and_(pick_int(), mask)
            ptr = b.gep(garr, idx)
            if rng.random() < config.p_store:
                b.store(pick_int(), ptr)
            int_vals.append(b.load(ptr))

    b.store(pick_int(), gscal)
    for v in int_vals:
        b.call("print_i64", [v], ret_type=T.VOID)
    for v in fp_vals:
        b.call("print_f64", [v], ret_type=T.VOID)
    b.ret()
    return module
