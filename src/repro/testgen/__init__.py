"""Structured program generation + protection-pass validation (DESIGN §12).

The reproduction rests on two claims that are otherwise only
spot-checked:

1. both execution layers agree bit-for-bit on any legal program, and
2. the duplication/checker/Flowery passes provide the coverage the
   campaigns measure.

This package turns both into executable, regression-guarded claims:

* :mod:`repro.testgen.minic` — a seed-deterministic Csmith-style MiniC
  program generator (loops, functions, calls, arrays, globals);
* :mod:`repro.testgen.irgen` — seed-deterministic direct-IR generation
  exercising operand shapes the frontend never emits;
* :mod:`repro.testgen.strategies` — hypothesis strategies that are thin
  wrappers over the two generators (one generator, no drift; import
  requires ``hypothesis``, so it lives in its own module);
* :mod:`repro.testgen.oracle` — a differential oracle that executes a
  generated program across the full {IR, asm} x {unprotected,
  dup30/50/70/100, Flowery} x {naive, decoded} matrix and asserts
  bit-identical output everywhere;
* :mod:`repro.testgen.mutants` — a mutation-testing harness
  (``repro mutate``) that applies systematic weakenings to the
  protection passes and asserts every mutant is *killed* by the golden
  oracle, a coverage drop in an exhaustive fault-injection sweep, or a
  plan-invariant check.

Everything here is test/validation tooling: nothing in this package is
imported by the campaign hot paths, so generator overhead is strictly
zero at campaign runtime.
"""

from .minic import (
    GenConfig,
    GeneratedMiniC,
    generate_minic,
    minimize_minic,
    render_minic,
)
from .irgen import IRGenConfig, generate_ir
from .oracle import (
    OracleConfig,
    OracleFailure,
    OracleReport,
    partial_selection,
    run_differential_oracle,
)
from .mutants import (
    MUTANTS,
    SMOKE_MUTANTS,
    WITNESS_SOURCE,
    Mutant,
    MutantResult,
    MutationConfig,
    MutationReport,
    run_mutation_suite,
)

__all__ = [
    "GenConfig",
    "GeneratedMiniC",
    "generate_minic",
    "minimize_minic",
    "render_minic",
    "IRGenConfig",
    "generate_ir",
    "OracleConfig",
    "OracleFailure",
    "OracleReport",
    "partial_selection",
    "run_differential_oracle",
    "MUTANTS",
    "SMOKE_MUTANTS",
    "WITNESS_SOURCE",
    "Mutant",
    "MutantResult",
    "MutationConfig",
    "MutationReport",
    "run_mutation_suite",
]
