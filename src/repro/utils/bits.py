"""Bit-level helpers shared by the IR interpreter and the machine.

All simulated integer state is kept in *canonical signed form*: a Python
int within the two's-complement range of its declared width.  These
helpers convert between signed and unsigned views, wrap arithmetic
results back into range, and flip individual bits the way a single-event
upset would in a hardware latch.

Floating-point state is kept as a Python float; bit flips go through the
IEEE-754 binary64 encoding via :mod:`struct`.
"""

from __future__ import annotations

import struct

__all__ = [
    "mask",
    "to_unsigned",
    "to_signed",
    "wrap_signed",
    "flip_int_bit",
    "float_to_bits",
    "bits_to_float",
    "flip_float_bit",
    "sign_extend",
    "zero_extend",
    "truncate",
]

_MASKS = {w: (1 << w) - 1 for w in (1, 8, 16, 32, 64)}


def mask(width: int) -> int:
    """All-ones mask for ``width`` bits."""
    m = _MASKS.get(width)
    if m is None:
        m = (1 << width) - 1
    return m


def to_unsigned(value: int, width: int) -> int:
    """Reinterpret a canonical signed value as unsigned."""
    return value & mask(width)


def to_signed(value: int, width: int) -> int:
    """Reinterpret ``width`` low bits of ``value`` as two's-complement."""
    value &= mask(width)
    sign_bit = 1 << (width - 1)
    if value & sign_bit:
        return value - (1 << width)
    return value


def wrap_signed(value: int, width: int) -> int:
    """Wrap an arbitrary Python int into the signed range of ``width`` bits.

    This is the canonicalisation applied after every simulated integer
    operation, mirroring register overflow semantics.
    """
    return to_signed(value & mask(width), width)


def flip_int_bit(value: int, bit: int, width: int) -> int:
    """Flip ``bit`` of a canonical signed integer, returning canonical form.

    ``bit`` must lie in ``[0, width)``; this models a single-event upset
    in one latch of the destination register.
    """
    if not 0 <= bit < width:
        raise ValueError(f"bit {bit} out of range for width {width}")
    return to_signed((value & mask(width)) ^ (1 << bit), width)


def float_to_bits(value: float) -> int:
    """IEEE-754 binary64 encoding of ``value`` as an unsigned int."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_float(bits: int) -> float:
    """Decode an unsigned 64-bit pattern as an IEEE-754 binary64 float."""
    return struct.unpack("<d", struct.pack("<Q", bits & _MASKS[64]))[0]


def flip_float_bit(value: float, bit: int) -> float:
    """Flip one bit of the binary64 representation of ``value``."""
    if not 0 <= bit < 64:
        raise ValueError(f"bit {bit} out of range for binary64")
    return bits_to_float(float_to_bits(value) ^ (1 << bit))


def sign_extend(value: int, from_width: int, to_width: int) -> int:
    """Sign-extend a canonical signed value to a wider width (identity
    on the canonical representation, but validates the widths)."""
    if to_width < from_width:
        raise ValueError("sign_extend cannot narrow")
    return to_signed(to_unsigned(value, from_width) | (
        (mask(to_width) ^ mask(from_width)) if value < 0 else 0
    ), to_width)


def zero_extend(value: int, from_width: int, to_width: int) -> int:
    """Zero-extend: reinterpret the low ``from_width`` bits as unsigned."""
    if to_width < from_width:
        raise ValueError("zero_extend cannot narrow")
    return to_unsigned(value, from_width)


def truncate(value: int, to_width: int) -> int:
    """Truncate to ``to_width`` bits, returning canonical signed form."""
    return to_signed(value, to_width)
