"""Output formatting shared by both execution layers.

Program output is the SDC oracle, so both layers must format values
byte-identically.  Floats print like C ``printf("%g")`` (6 significant
digits): perturbations below the printed precision are benign, exactly
as with the paper's C benchmarks.
"""

from __future__ import annotations

import math

__all__ = ["format_i64", "format_f64", "format_char"]


def format_i64(value: int) -> str:
    return str(value)


def format_f64(value: float) -> str:
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return "%g" % value


def format_char(value: int) -> str:
    return chr(value & 0x7F)
