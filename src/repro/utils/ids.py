"""Deterministic id allocation for IR entities.

Unique integer ids give instructions a stable identity across pass
pipelines (duplication tags shadows with their master's id, the backend
records asm->IR provenance by id, and the fault injectors attribute
outcomes to static instructions by id).  Ids are allocated per module so
two modules built in the same process do not interfere.
"""

from __future__ import annotations

import itertools


class IdAllocator:
    """Monotonic id source; ids are never reused within a module."""

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)

    def next(self) -> int:
        return next(self._counter)
