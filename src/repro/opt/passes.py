"""IR-level optimization passes.

The paper (§5.2) attributes comparison penetration to "dozens of
powerful optimization passes ... such as dead code elimination and
constant propagation" interacting with duplicated code.  This package
provides the classic trio so users can study protection under
optimization:

* :func:`constant_fold` — evaluate all-constant pure instructions
* :func:`dead_code_elimination` — drop unused pure results
* :func:`simplify_cfg` — fold constant branches, drop unreachable
  blocks, merge straight-line block chains

All passes preserve program semantics exactly (folding never touches a
division whose divisor is a constant zero, volatile loads are pinned,
sync points and calls are never removed).  ``optimize_module`` iterates
the pipeline to a fixpoint.

Running optimization *before* protection models a production `-O1`-ish
build; running it *after* would legally delete shadow computations —
which is precisely the comparison-penetration phenomenon, so the
pipeline refuses modules that already contain protection metadata
unless ``allow_protected=True``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import IRError
from ..ir import types as T
from ..ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    Gep,
    ICmp,
    Instruction,
    Load,
    Ret,
    Select,
    Store,
    Unreachable,
)
from ..ir.module import BasicBlock, Function, Module
from ..ir.values import Constant, Value, const_bool, const_float, const_int

__all__ = [
    "constant_fold",
    "dead_code_elimination",
    "simplify_cfg",
    "optimize_module",
    "OptStats",
]


class OptStats(dict):
    """Per-pass change counters (dict of pass name -> changes)."""

    def bump(self, key: str, n: int = 1) -> None:
        self[key] = self.get(key, 0) + n

    @property
    def total(self) -> int:
        return sum(self.values())


# -- constant folding ----------------------------------------------------


def _fold_instruction(inst: Instruction) -> Optional[Constant]:
    """Constant result of a pure all-constant instruction, or None."""
    from ..interp.interpreter import _cast, _fcmp, _icmp, _int_arith

    ops = inst.operands
    if isinstance(inst, BinOp):
        if not all(isinstance(o, Constant) for o in ops):
            return None
        a, b = ops
        if inst.opcode in ("sdiv", "srem"):
            if int(b.value) == 0:
                return None  # keep the trap
            value = _int_arith(inst.opcode, int(a.value), int(b.value),
                               inst.type.bits)
            return const_int(value, inst.type)
        if inst.type.is_float:
            from ..interp.interpreter import _float_arith

            return const_float(
                _float_arith(inst.opcode, float(a.value), float(b.value))
            )
        return const_int(
            _int_arith(inst.opcode, int(a.value), int(b.value),
                       inst.type.bits),
            inst.type,
        )
    if isinstance(inst, ICmp):
        if all(isinstance(o, Constant) for o in ops):
            return const_bool(
                _icmp(inst.pred, int(ops[0].value), int(ops[1].value),
                      ops[0].type)
            )
        return None
    if isinstance(inst, FCmp):
        if all(isinstance(o, Constant) for o in ops):
            return const_bool(
                _fcmp(inst.pred, float(ops[0].value), float(ops[1].value))
            )
        return None
    if isinstance(inst, Cast):
        (src,) = ops
        if isinstance(src, Constant):
            value = _cast(inst.opcode, src.value, src.type, inst.type)
            if inst.type.is_float:
                return const_float(float(value))
            return Constant(inst.type, int(value))
        return None
    if isinstance(inst, Select):
        cond, a, b = ops
        if isinstance(cond, Constant):
            chosen = a if cond.value else b
            if isinstance(chosen, Constant):
                return Constant(chosen.type, chosen.value)
        return None
    return None


def _replace_uses(fn, old: Instruction, new: Value) -> int:
    count = 0
    for inst in fn.instructions():
        for i, op in enumerate(inst.operands):
            if op is old:
                inst.operands[i] = new
                count += 1
    return count


def constant_fold(module: Module) -> int:
    """Fold constant computations; returns the number folded."""
    folded = 0
    for fn in module.functions.values():
        if fn.is_declaration:
            continue
        changed = True
        while changed:
            changed = False
            for block in fn.blocks:
                for inst in list(block.instructions):
                    result = _fold_instruction(inst)
                    if result is None:
                        continue
                    _replace_uses(fn, inst, result)
                    block.instructions.remove(inst)
                    folded += 1
                    changed = True
    return folded


# -- dead code elimination ---------------------------------------------------


def _is_removable(inst: Instruction) -> bool:
    if inst.is_terminator or inst.is_sync_point:
        return False
    if isinstance(inst, Call):  # calls may have effects
        return False
    if isinstance(inst, Load) and inst.volatile:
        return False
    if not inst.has_result or inst.type.is_void:
        return False
    return True


def dead_code_elimination(module: Module) -> int:
    """Remove unused pure instructions; returns the number removed."""
    removed = 0
    for fn in module.functions.values():
        if fn.is_declaration:
            continue
        changed = True
        while changed:
            changed = False
            used: Set[int] = set()
            for inst in fn.instructions():
                for op in inst.operands:
                    if isinstance(op, Instruction):
                        used.add(op.iid)
            for block in fn.blocks:
                for inst in list(block.instructions):
                    if inst.iid not in used and _is_removable(inst):
                        block.instructions.remove(inst)
                        removed += 1
                        changed = True
    return removed


# -- CFG simplification ----------------------------------------------------------


def _fold_constant_branches(fn) -> int:
    changed = 0
    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, CondBr) and isinstance(term.condition, Constant):
            target = (
                term.then_block if term.condition.value else term.else_block
            )
            br = Br(target)
            fn.module.assign_iid(br)
            br.attrs.update(term.attrs)
            br.parent = block
            block.instructions[-1] = br
            changed += 1
    return changed


def _remove_unreachable(fn) -> int:
    reachable: Set[BasicBlock] = set()
    stack = [fn.entry]
    while stack:
        block = stack.pop()
        if block in reachable:
            continue
        reachable.add(block)
        stack.extend(block.successors())
    dead = [b for b in fn.blocks if b not in reachable]
    for b in dead:
        fn.blocks.remove(b)
    return len(dead)


def _merge_chains(fn) -> int:
    merged = 0
    changed = True
    while changed:
        changed = False
        preds = fn.predecessors()
        for block in list(fn.blocks):
            term = block.terminator
            if not isinstance(term, Br):
                continue
            target = term.target
            if target is block or target is fn.entry:
                continue
            if len(preds.get(target, [])) != 1:
                continue
            # splice target into block
            block.instructions.pop()  # the Br
            for inst in target.instructions:
                inst.parent = block
                block.instructions.append(inst)
            fn.blocks.remove(target)
            merged += 1
            changed = True
            break
    return merged


def simplify_cfg(module: Module) -> int:
    """Constant-branch folding + unreachable removal + chain merging."""
    changes = 0
    for fn in module.functions.values():
        if fn.is_declaration:
            continue
        changes += _fold_constant_branches(fn)
        changes += _remove_unreachable(fn)
        changes += _merge_chains(fn)
    return changes


# -- pipeline -------------------------------------------------------------------------


def optimize_module(
    module: Module,
    allow_protected: bool = False,
    max_iterations: int = 10,
) -> OptStats:
    """Run the pipeline to a fixpoint; returns per-pass change counts.

    Refuses modules that already carry protection metadata (shadows or
    checkers) unless ``allow_protected=True`` — optimizing *after*
    duplication legally deletes the protection, which is exactly the
    cross-layer failure mode the paper studies (use the backend's
    compare-CSE knob to reproduce that instead).
    """
    if not allow_protected:
        for inst in module.instructions():
            if inst.is_shadow or inst.is_checker:
                raise IRError(
                    "optimize_module on a protected module would delete "
                    "shadow computation; pass allow_protected=True to "
                    "study that deliberately"
                )
    stats = OptStats()
    for _ in range(max_iterations):
        round_changes = 0
        n = constant_fold(module)
        stats.bump("constant_fold", n)
        round_changes += n
        n = simplify_cfg(module)
        stats.bump("simplify_cfg", n)
        round_changes += n
        n = dead_code_elimination(module)
        stats.bump("dead_code_elimination", n)
        round_changes += n
        if round_changes == 0:
            break
    return stats
