"""IR optimization passes (constant folding, DCE, CFG simplification)."""

from .passes import (  # noqa: F401
    OptStats,
    constant_fold,
    dead_code_elimination,
    optimize_module,
    simplify_cfg,
)

__all__ = ["optimize_module", "constant_fold", "dead_code_elimination",
           "simplify_cfg", "OptStats"]
