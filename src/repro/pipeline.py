"""End-to-end build pipeline: MiniC source -> protected binary at both
layers.

This is the main high-level entry point of the library::

    from repro.pipeline import build
    built = build("crc32", scale="small", level=70, flowery=True)
    built.run_ir()      # IR-layer execution
    built.run_asm()     # assembly-layer execution

``build`` compiles the benchmark (or raw source), optionally applies
selective duplication + Flowery, lowers to assembly, and packages every
artifact the fault-injection and analysis layers need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from .backend.lower import LoweringOptions, lower_module
from .backend.program import AsmProgram
from .benchsuite.registry import BENCHMARKS, load_source
from .execresult import ExecResult
from .frontend.codegen import compile_source
from .interp.interpreter import IRInterpreter
from .interp.layout import GlobalLayout
from .ir.module import Module
from .ir.verifier import verify_module
from .machine.machine import AsmMachine, CompiledProgram, compile_program
from .protection.api import ProtectedProgram, protect
from .protection.cfc import CFCInfo, apply_cfc
from .protection.planner import SdcProfile

__all__ = ["BuiltProgram", "build", "build_from_source"]


@dataclass
class BuiltProgram:
    """Every artifact of one compiled (and possibly protected) program."""

    name: str
    source: str
    module: Module
    layout: GlobalLayout
    asm: AsmProgram
    compiled: CompiledProgram
    protection: Optional[ProtectedProgram] = None
    cfc_info: Optional[CFCInfo] = None

    def run_ir(self, **kwargs) -> ExecResult:
        interp = IRInterpreter(
            self.module,
            layout=self.layout,
            max_steps=kwargs.pop("max_steps", 50_000_000),
            trace=kwargs.pop("trace", None),
            fault_model=kwargs.pop("fault_model", None),
        )
        return interp.run(**kwargs)

    def run_asm(self, **kwargs) -> ExecResult:
        trace = kwargs.pop("trace", None)
        if trace is not None:
            from .trace.tap import MachineTracer

            if not isinstance(trace, MachineTracer):
                trace = MachineTracer(trace, module=self.module)
        machine = AsmMachine(
            self.compiled,
            self.layout,
            max_steps=kwargs.pop("max_steps", 100_000_000),
            trace=trace,
            fault_model=kwargs.pop("fault_model", None),
        )
        return machine.run(**kwargs)

    def lockstep(self, **kwargs):
        """Co-run both layers and diff them (see :mod:`repro.trace.diff`)."""
        from .trace.diff import run_lockstep

        return run_lockstep(self.module, self.layout, self.compiled,
                            **kwargs)

    @property
    def is_protected(self) -> bool:
        return self.protection is not None


def build_from_source(
    source: str,
    name: str = "program",
    level: Optional[int] = None,
    flowery: bool = False,
    profile: Optional[SdcProfile] = None,
    selected: Optional[Set[int]] = None,
    compare_cse: bool = True,
    profile_campaigns: int = 400,
    profile_seed: int = 0,
    cfc: bool = False,
    cfc_weakness: Optional[str] = None,
) -> BuiltProgram:
    """Compile MiniC source; ``level=None`` leaves it unprotected.

    ``cfc=True`` adds signature-based control-flow checking after
    duplication (composable: ``level`` and ``cfc`` are independent).
    """
    module = compile_source(source, name)
    protection = None
    if level is not None:
        protection = protect(
            module,
            level=level,
            flowery=flowery,
            profile=profile,
            selected=selected,
            profile_campaigns=profile_campaigns,
            profile_seed=profile_seed,
        )
    cfc_info = None
    if cfc:
        cfc_info = apply_cfc(module, weakness=cfc_weakness)
        verify_module(module)
    layout = GlobalLayout(module)
    asm = lower_module(
        module, layout, LoweringOptions(compare_cse=compare_cse)
    )
    compiled = compile_program(asm.flatten())
    return BuiltProgram(
        name=name,
        source=source,
        module=module,
        layout=layout,
        asm=asm,
        compiled=compiled,
        protection=protection,
        cfc_info=cfc_info,
    )


def build(
    benchmark: str,
    scale: str = "small",
    level: Optional[int] = None,
    flowery: bool = False,
    profile: Optional[SdcProfile] = None,
    compare_cse: bool = True,
    profile_campaigns: int = 400,
    profile_seed: int = 0,
    cfc: bool = False,
    cfc_weakness: Optional[str] = None,
) -> BuiltProgram:
    """Build a registered benchmark (see :mod:`repro.benchsuite`)."""
    source = load_source(benchmark, scale)
    return build_from_source(
        source,
        name=benchmark,
        level=level,
        flowery=flowery,
        profile=profile,
        compare_cse=compare_cse,
        profile_campaigns=profile_campaigns,
        profile_seed=profile_seed,
        cfc=cfc,
        cfc_weakness=cfc_weakness,
    )
