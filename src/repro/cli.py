"""Command-line interface.

::

    repro list                               # benchmarks
    repro run crc32 --scale small            # run at both layers
    repro asm crc32 --scale tiny             # assembly listing
    repro ir crc32                           # IR listing
    repro protect crc32 --level 70 --flowery # protect + report structure
    repro inject crc32 --level 100 -n 300    # campaign + coverage + causes
    repro trace crc32 --level 100 --inject 50 --layer asm
                                             # lockstep divergence diff
    repro stats crc32 --level 100 -n 100     # campaign observability
    repro stats crc32 -n 300 --journal c.jsonl   # crash-safe campaign
    repro campaign crc32 --incremental --store s.jsonl
                                             # section-composed, cache hits
    repro resume c.jsonl                     # finish an interrupted one
    repro bench pathfinder --scale medium    # naive vs engine throughput
    repro chaos --smoke                      # fuzz the containment contract
    repro testgen --seed 7 --oracle          # generate + differential oracle
    repro mutate --smoke                     # mutation-test the protection
    repro experiment fig2|fig3|fig17|fault-matrix|incremental|table1|overhead|compile-time
    repro store verify s.jsonl               # recompute CRCs + key hashes
    repro store compact s.jsonl              # rewrite to live content
    repro store stats                        # counters ($REPRO_STORE)

Environment knobs (REPRO_SCALE, REPRO_CAMPAIGNS, REPRO_BENCHMARKS...)
apply to the ``experiment`` subcommand; see
:mod:`repro.experiments.config`.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis.rootcause import classify_campaign
from .analysis.coverage import sdc_coverage
from .benchsuite.registry import BENCHMARKS, benchmark_names, load_source
from .faultmodel import FAULT_MODELS
from .fi.campaign import CampaignConfig, run_asm_campaign, run_ir_campaign
from .ir.printer import print_module
from .pipeline import build
from .experiments import (
    ExperimentConfig,
    render_compile_time,
    render_fault_matrix,
    render_figure2,
    render_incremental,
    render_figure3,
    render_figure17,
    render_overhead,
    render_pruning,
    render_table1,
    run_compile_time,
    run_fault_matrix,
    run_figure2,
    run_incremental,
    run_figure3,
    run_figure17,
    run_overhead,
    run_pruning,
    run_table1,
)

__all__ = ["main"]


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("benchmark", choices=benchmark_names())
    p.add_argument("--scale", default="small",
                   choices=("tiny", "small", "medium"))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Cross-layer evaluation of instruction duplication "
                     "(SC'23 reproduction)"),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks")

    run_p = sub.add_parser("run", help="run a benchmark at both layers")
    _add_common(run_p)

    ir_p = sub.add_parser("ir", help="print a benchmark's IR")
    _add_common(ir_p)
    ir_p.add_argument("--level", type=int, default=None)
    ir_p.add_argument("--flowery", action="store_true")

    asm_p = sub.add_parser("asm", help="print a benchmark's assembly")
    _add_common(asm_p)
    asm_p.add_argument("--level", type=int, default=None)
    asm_p.add_argument("--flowery", action="store_true")

    prot_p = sub.add_parser("protect", help="protect and report structure")
    _add_common(prot_p)
    prot_p.add_argument("--level", type=int, default=100)
    prot_p.add_argument("--flowery", action="store_true")

    inj_p = sub.add_parser("inject", help="fault-injection campaign")
    _add_common(inj_p)
    inj_p.add_argument("--level", type=int, default=None,
                       help="protection level (omit for unprotected)")
    inj_p.add_argument("--flowery", action="store_true")
    inj_p.add_argument("--cfc", action="store_true",
                       help="add signature-based control-flow checking")
    inj_p.add_argument("-n", "--campaigns", type=int, default=300)
    inj_p.add_argument("--seed", type=int, default=2023)
    inj_p.add_argument("--fault-model", choices=FAULT_MODELS,
                       default="seu",
                       help="injected fault model: single bit flip (seu), "
                            "transient double flip + flag upset (set), or "
                            "branch-target redirect (cf)")
    inj_p.add_argument("--prune", action="store_true",
                       help="resolve provably-benign draws statically "
                            "(bit-liveness pruning: same draw, same "
                            "estimates, fewer simulated steps)")
    inj_p.add_argument("--stratify", action="store_true",
                       help="stratified sampling over bit-liveness site "
                            "classes with Neyman allocation")

    trace_p = sub.add_parser(
        "trace",
        help="co-run IR and asm layers in lockstep and diff sync streams",
    )
    _add_common(trace_p)
    trace_p.add_argument("--level", type=int, default=None)
    trace_p.add_argument("--flowery", action="store_true")
    trace_p.add_argument("--inject", type=int, default=None,
                         help="injectable dynamic site index (omit for a "
                              "golden co-run)")
    trace_p.add_argument("--bit", type=int, default=0)
    trace_p.add_argument("--layer", choices=("ir", "asm"), default="asm",
                         help="layer receiving the injection")
    trace_p.add_argument("--fault-model", choices=FAULT_MODELS,
                         default="seu",
                         help="fault model for the injected layer (cf "
                              "faults make the report name the corrupted "
                              "edge)")
    trace_p.add_argument("--mode", default="sync",
                         choices=("sync", "ring", "sample", "full"),
                         help="step-record mode (sync events are always on)")
    trace_p.add_argument("--limit", type=int, default=None,
                         help="cap on recorded sync events per layer")
    trace_p.add_argument("--tail", type=int, default=10,
                         help="step records to print per layer "
                              "(non-sync modes)")
    trace_p.add_argument("--jsonl", default=None,
                         help="write both traces as JSONL to this path")

    stats_p = sub.add_parser(
        "stats",
        help="campaign with observability: phase timings, throughput, "
             "outcomes",
    )
    _add_common(stats_p)
    stats_p.add_argument("--level", type=int, default=None)
    stats_p.add_argument("--flowery", action="store_true")
    stats_p.add_argument("--cfc", action="store_true",
                         help="add signature-based control-flow checking")
    stats_p.add_argument("-n", "--campaigns", type=int, default=300)
    stats_p.add_argument("--seed", type=int, default=2023)
    stats_p.add_argument("--layer", choices=("ir", "asm"), default="asm")
    stats_p.add_argument("--fault-model", choices=FAULT_MODELS,
                         default="seu",
                         help="injected fault model (recorded per journal "
                              "row; campaigns resume bit-identically)")
    stats_p.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: REPRO_WORKERS or the CPU count)",
    )
    stats_p.add_argument("--jsonl", default=None,
                         help="write the observer event stream to this path")
    stats_p.add_argument(
        "--journal", default=None, metavar="PATH",
        help="checkpoint every classified injection to this JSONL "
             "journal; rerunning (or `repro resume`) skips journaled "
             "samples",
    )
    stats_p.add_argument("--prune", action="store_true",
                         help="resolve provably-benign draws statically "
                              "(bit-liveness pruning: same draw, same "
                              "estimates, fewer simulated steps)")
    stats_p.add_argument("--stratify", action="store_true",
                         help="stratified sampling over bit-liveness "
                              "site classes with Neyman allocation")

    res_p = sub.add_parser(
        "resume",
        help="resume an interrupted campaign from its injection journal",
    )
    res_p.add_argument("journal", help="journal written by --journal")
    res_p.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: REPRO_WORKERS or the CPU count)",
    )
    res_p.add_argument("--jsonl", default=None,
                       help="write the observer event stream to this path")

    camp_p = sub.add_parser(
        "campaign",
        help="fault-injection campaign; --incremental composes "
             "section profiles from a persistent content-hash store",
    )
    _add_common(camp_p)
    camp_p.add_argument("--level", type=int, default=None)
    camp_p.add_argument("--flowery", action="store_true")
    camp_p.add_argument("--cfc", action="store_true")
    camp_p.add_argument("-n", "--campaigns", type=int, default=300)
    camp_p.add_argument("--seed", type=int, default=2023)
    camp_p.add_argument("--layer", choices=("ir", "asm"), default="ir")
    camp_p.add_argument("--fault-model", choices=FAULT_MODELS,
                        default="seu")
    camp_p.add_argument("--incremental", action="store_true",
                        help="section-level campaign: unchanged sections "
                             "are cache hits against --store")
    camp_p.add_argument("--store", default=None, metavar="PATH",
                        help="section-profile store (JSONL journal); "
                             "created on first use, shared across "
                             "programs, re-runs and concurrent "
                             "campaigns (default: $REPRO_STORE)")
    camp_p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the injections the store cannot "
             "serve (incremental mode)",
    )
    camp_p.add_argument("--prune", action="store_true",
                        help="resolve provably-benign draws statically "
                             "(bit-liveness pruning: same draw, same "
                             "estimates, fewer simulated steps)")
    camp_p.add_argument("--stratify", action="store_true",
                        help="stratified sampling over bit-liveness site "
                             "classes with Neyman allocation (not "
                             "compatible with --incremental)")

    bench_p = sub.add_parser(
        "bench",
        help="benchmark campaign throughput: naive vs checkpoint-replay "
             "engine",
    )
    bench_p.add_argument("benchmark", nargs="?", default="pathfinder",
                         choices=benchmark_names())
    bench_p.add_argument("--scale", default="medium",
                         choices=("tiny", "small", "medium"))
    bench_p.add_argument("-n", "--campaigns", type=int, default=40)
    bench_p.add_argument("--seed", type=int, default=2023)
    bench_p.add_argument("--level", type=int, default=None)
    bench_p.add_argument("--flowery", action="store_true")
    bench_p.add_argument("--out", default="BENCH_campaign.json",
                         metavar="PATH",
                         help="write the JSON bench document here "
                              "('-' to skip)")

    chaos_p = sub.add_parser(
        "chaos",
        help="fuzz the fault containment contract: seeded bit-flips "
             "across all benchmarks, layers, and dispatch modes",
    )
    chaos_p.add_argument(
        "--benchmark", action="append", default=None,
        choices=benchmark_names(), metavar="NAME",
        help="restrict the sweep to this benchmark (repeatable; "
             "default: all)",
    )
    chaos_p.add_argument("--scale", default="tiny",
                         choices=("tiny", "small", "medium"))
    chaos_p.add_argument("-n", "--injections", type=int, default=200,
                         help="injections per benchmark/layer "
                              "(each runs under every dispatch mode)")
    chaos_p.add_argument("--seed", type=int, default=2023)
    chaos_p.add_argument(
        "--smoke", action="store_true",
        help="CI-sized sweep: 8 injections per target at tiny scale",
    )
    chaos_p.add_argument(
        "--fault-model", action="append", default=None,
        choices=FAULT_MODELS, metavar="MODEL",
        help="restrict the sweep to this fault model (repeatable; "
             "default: all of seu, set, cf)",
    )
    chaos_p.add_argument("--json", default=None, metavar="PATH",
                         help="write the JSON report here")

    tg_p = sub.add_parser(
        "testgen",
        help="generate seed-deterministic programs and (optionally) run "
             "each through the differential protection/layer/dispatch "
             "oracle matrix",
    )
    tg_p.add_argument("--kind", choices=("minic", "ir"), default="minic",
                      help="MiniC source generation or direct-IR modules")
    tg_p.add_argument("--seed", type=int, default=0, help="first seed")
    tg_p.add_argument("--count", type=int, default=1,
                      help="number of consecutive seeds")
    tg_p.add_argument("--oracle", action="store_true",
                      help="run every generated program through the full "
                           "differential oracle matrix instead of "
                           "printing it")
    tg_p.add_argument("--json", default=None, metavar="PATH",
                      help="write the oracle reports as JSON here")

    mut_p = sub.add_parser(
        "mutate",
        help="mutation-test the protection passes: every catalogued "
             "weakening must be killed by the golden, coverage, or "
             "plan-invariant oracle",
    )
    mut_p.add_argument(
        "--mutant", action="append", default=None, metavar="NAME",
        help="run only this mutant (repeatable; default: full catalog)",
    )
    mut_p.add_argument(
        "--smoke", action="store_true",
        help="CI-sized subset: one mutant per oracle family plus an "
             "identity row",
    )
    mut_p.add_argument("--list", action="store_true", dest="list_mutants",
                       help="list the catalog and exit")
    mut_p.add_argument("--json", default=None, metavar="PATH",
                       help="write the kill-matrix JSON here")

    exp_p = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp_p.add_argument(
        "which",
        choices=("table1", "fig2", "fig3", "fig17", "fault-matrix",
                 "incremental", "pruning", "overhead", "compile-time"),
    )

    store_p = sub.add_parser(
        "store",
        help="maintain a shared section-profile store: compact "
             "(rewrite to live content, atomically, under the lock), "
             "verify (recompute CRCs and key hashes), stats",
    )
    store_p.add_argument("action", choices=("compact", "verify", "stats"))
    store_p.add_argument("path", nargs="?", default=None,
                         help="store file (default: $REPRO_STORE)")
    store_p.add_argument("--json", action="store_true",
                         help="emit the raw report as JSON")
    return parser


def _cmd_list() -> int:
    for name in benchmark_names():
        b = BENCHMARKS[name]
        print(f"{name:14s} {b.suite:8s} {b.domain}")
    return 0


def _cmd_run(args) -> int:
    built = build(args.benchmark, scale=args.scale)
    ir = built.run_ir()
    asm = built.run_asm()
    print(ir.output, end="")
    print(f"# IR dyn: {ir.dyn_total}  injectable: {ir.dyn_injectable}")
    print(f"# ASM dyn: {asm.dyn_total}  injectable: {asm.dyn_injectable}")
    print(f"# cross-layer outputs match: {ir.output == asm.output}")
    return 0


def _cmd_ir(args) -> int:
    built = build(args.benchmark, scale=args.scale, level=args.level,
                  flowery=args.flowery)
    print(print_module(built.module), end="")
    return 0


def _cmd_asm(args) -> int:
    built = build(args.benchmark, scale=args.scale, level=args.level,
                  flowery=args.flowery)
    print(built.asm.text(), end="")
    return 0


def _cmd_protect(args) -> int:
    built = build(args.benchmark, scale=args.scale, level=args.level,
                  flowery=args.flowery)
    prot = built.protection
    assert prot is not None
    print(f"benchmark:          {args.benchmark} ({args.scale})")
    print(f"protection level:   {args.level}%")
    print(f"flowery:            {prot.flowery} {prot.flowery_stats}")
    print(f"protected instrs:   {len(prot.dup_info.protected)}")
    print(f"checkers inserted:  {prot.dup_info.checker_count()}")
    print(f"checkers folded:    {len(built.asm.folded_checkers)} (backend)")
    if prot.plan is not None:
        print(f"plan budget/spent:  {prot.plan.budget}/{prot.plan.spent} "
              f"dynamic instructions")
    return 0


def _cmd_inject(args) -> int:
    cfg = CampaignConfig(n_campaigns=args.campaigns, seed=args.seed,
                         prune=args.prune, stratify=args.stratify)
    built = build(args.benchmark, scale=args.scale, level=args.level,
                  flowery=args.flowery, cfc=args.cfc)
    fm = args.fault_model
    ir = run_ir_campaign(built.module, cfg, built.layout, fault_model=fm)
    asm = run_asm_campaign(built.compiled, built.layout, cfg,
                           fault_model=fm)
    print(f"# fault model: {fm}"
          + (f", protection: level={args.level}" if args.level is not None
             else ", protection: none")
          + (", cfc" if args.cfc else ""))
    print(f"{'layer':6s} {'sdc':>8s} {'due':>8s} {'detected':>9s} "
          f"{'benign':>8s}")
    for res in (ir, asm):
        s = res.summary()
        line = (f"{res.layer:6s} {s['sdc']:8.3f} {s['due']:8.3f} "
                f"{s['detected']:9.3f} {s['benign']:8.3f}")
        if s.get("pruned"):
            line += f"  pruned={s['pruned']}"
        print(line)
    if args.level is not None:
        raw_built = build(args.benchmark, scale=args.scale)
        raw_ir = run_ir_campaign(raw_built.module, cfg, raw_built.layout,
                                 fault_model=fm)
        raw_asm = run_asm_campaign(
            raw_built.compiled, raw_built.layout, cfg, fault_model=fm
        )
        print(f"coverage IR : "
              f"{sdc_coverage(raw_ir.sdc_probability, ir.sdc_probability):.3f}")
        print(f"coverage ASM: "
              f"{sdc_coverage(raw_asm.sdc_probability, asm.sdc_probability):.3f}")
        assert built.protection is not None
        report = classify_campaign(
            args.benchmark, args.level, asm, built.module, built.asm,
            built.protection.dup_info,
        )
        if report.counts:
            print("escape root causes:",
                  {p.value: n for p, n in sorted(
                      report.counts.items(), key=lambda kv: -kv[1])})
    return 0


def _cmd_trace(args) -> int:
    from .trace import TraceConfig

    built = build(args.benchmark, scale=args.scale, level=args.level,
                  flowery=args.flowery)
    cfg = TraceConfig(mode=args.mode, sync_limit=args.limit)
    report = built.lockstep(
        inject_layer=args.layer if args.inject is not None else None,
        inject_index=args.inject,
        inject_bit=args.bit,
        config=cfg,
        fault_model=args.fault_model,
    )
    print(report.narrate())
    if args.mode != "sync" and args.tail > 0:
        for tr in (report.trace_a, report.trace_b):
            recs = tr.step_records()[-args.tail:]
            print(f"# last {len(recs)} {tr.layer} step records "
                  f"({tr.steps_seen} steps total)")
            for rec in recs:
                print(f"  {rec.describe()}")
    if args.jsonl:
        with open(args.jsonl, "w") as fh:
            fh.write(report.trace_a.to_jsonl())
            fh.write(report.trace_b.to_jsonl())
        print(f"# traces written to {args.jsonl}")
    return 0


def _fmt_summary(s) -> str:
    """Rates with their Wilson 95% intervals, one line."""
    parts = []
    for k in ("sdc", "due", "detected", "benign"):
        lo, hi = s[f"{k}_ci"]
        parts.append(f"{k}={s[k]:.3f} [{lo:.3f},{hi:.3f}]")
    if s.get("pruned"):
        parts.append(f"pruned={s['pruned']}")
    return " ".join(parts)


def _print_campaign_result(res) -> None:
    """Summary line(s) for a CampaignResult or StratifiedResult."""
    s = res.summary()
    print(_fmt_summary(s))
    if res.simulated_steps is not None:
        print(f"# simulated steps: {res.simulated_steps}")
    for st in s.get("strata", []):
        lo, hi = st["sdc_ci"]
        print(f"#   stratum {st['name']:<10} w={st['weight']:.3f} "
              f"n={st['n']} sdc={st['sdc']:.3f} [{lo:.3f},{hi:.3f}] "
              f"pruned={st['pruned']}")


def _cmd_campaign(args) -> int:
    built = build(args.benchmark, scale=args.scale, level=args.level,
                  flowery=args.flowery, cfc=args.cfc)
    cfg = CampaignConfig(n_campaigns=args.campaigns, seed=args.seed,
                         prune=args.prune, stratify=args.stratify)
    fm = args.fault_model
    if not args.incremental:
        if args.layer == "ir":
            res = run_ir_campaign(built.module, cfg, built.layout,
                                  fault_model=fm)
        else:
            res = run_asm_campaign(built.compiled, built.layout, cfg,
                                   fault_model=fm)
        print(f"{args.benchmark} {args.layer} n={res.n}")
        _print_campaign_result(res)
        return 0

    from .fi.compose import SectionProfileStore, run_incremental_campaign
    from .fi.parallel import run_incremental_campaign_for_spec
    from .fi.resilience import WorkSpec

    store_path = args.store or os.environ.get("REPRO_STORE") or None
    if args.workers > 1:
        spec = WorkSpec(
            source=built.source, name=args.benchmark, level=args.level,
            flowery=args.flowery, layer=args.layer, fault_model=fm,
            cfc=args.cfc,
        )
        res = run_incremental_campaign_for_spec(
            spec, cfg, store_path, workers=args.workers, built=built,
        )
    elif store_path:
        with SectionProfileStore(store_path) as store:
            res = run_incremental_campaign(built, args.layer, cfg, store,
                                           fault_model=fm)
    else:
        res = run_incremental_campaign(built, args.layer, cfg, None,
                                       fault_model=fm)
    print(f"{args.benchmark} {args.layer} n={res.n_total} "
          f"sections={len(res.sections)} simulated={res.simulated} "
          f"replayed={res.replayed} "
          f"cache-hits={res.cache_hits}/{len(res.sections)}")
    print(_fmt_summary(res.summary()))
    return 0


def _cmd_stats(args) -> int:
    from .fi.parallel import WorkSpec, run_parallel_campaign
    from .trace import CampaignObserver

    observer = CampaignObserver()
    spec = WorkSpec(
        source=load_source(args.benchmark, args.scale),
        name=args.benchmark,
        level=args.level,
        flowery=args.flowery,
        layer=args.layer,
        fault_model=args.fault_model,
        cfc=args.cfc,
    )
    cfg = CampaignConfig(n_campaigns=args.campaigns, seed=args.seed,
                         prune=args.prune, stratify=args.stratify)
    result = run_parallel_campaign(spec, cfg, workers=args.workers,
                                   observer=observer,
                                   journal_path=args.journal)
    print(observer.summary(), end="")
    _print_campaign_result(result)
    if args.jsonl:
        observer.write_jsonl(args.jsonl)
        print(f"# events written to {args.jsonl}")
    return 0


def _cmd_resume(args) -> int:
    from .fi.parallel import run_parallel_campaign
    from .fi.resilience import InjectionJournal
    from .trace import CampaignObserver

    spec, config, completed = InjectionJournal.peek(args.journal)
    print(f"# resuming {args.journal}: {spec.name} layer={spec.layer} "
          f"{len(completed)}/{config.n_campaigns} samples journaled")
    observer = CampaignObserver()
    result = run_parallel_campaign(spec, config, workers=args.workers,
                                   observer=observer,
                                   journal_path=args.journal)
    print(observer.summary(), end="")
    print(_fmt_summary(result.summary()))
    if args.jsonl:
        observer.write_jsonl(args.jsonl)
        print(f"# events written to {args.jsonl}")
    return 0


def _cmd_bench(args) -> int:
    import json

    from .fi.bench import render_bench, run_campaign_bench

    doc = run_campaign_bench(
        benchmark=args.benchmark, scale=args.scale, n=args.campaigns,
        seed=args.seed, level=args.level, flowery=args.flowery,
    )
    print(render_bench(doc), end="")
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"# bench document written to {args.out}")
    return 0 if doc["overall"]["results_identical"] else 1


def _cmd_chaos(args) -> int:
    import json

    from .fi.chaos import chaos_sweep, render_chaos

    n = 8 if args.smoke else args.injections
    kwargs = {}
    if args.fault_model:
        kwargs["fault_models"] = args.fault_model
    report = chaos_sweep(
        benchmarks=args.benchmark, scale=args.scale, n=n, seed=args.seed,
        progress=lambda line: print(f"# {line}"),
        **kwargs,
    )
    print(render_chaos(report), end="")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_doc(), fh, indent=2)
            fh.write("\n")
        print(f"# chaos report written to {args.json}")
    return 0 if report.ok else 1


def _cmd_testgen(args) -> int:
    import json

    from .frontend.codegen import compile_source
    from .ir.printer import print_module
    from .testgen import generate_ir, generate_minic, run_differential_oracle

    docs = []
    failed = False
    for seed in range(args.seed, args.seed + args.count):
        if args.kind == "minic":
            prog = generate_minic(seed)
            name = f"minic-{seed}"
            make = lambda: compile_source(prog.source, name)  # noqa: E731
            listing = prog.source
        else:
            name = f"ir-{seed}"
            make = lambda: generate_ir(seed)  # noqa: E731
            listing = print_module(generate_ir(seed))
        if not args.oracle:
            print(f"// {name}")
            print(listing)
            continue
        report = run_differential_oracle(make, name=name)
        docs.append(report.to_doc())
        status = "ok" if report.ok else "FAILED"
        print(f"{name:12s} {report.runs:3d} matrix runs  {status}")
        for failure in report.failures:
            failed = True
            print(f"  {failure.describe()}")
    if args.json and args.oracle:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({"schema": "testgen-oracle/1", "reports": docs},
                      fh, indent=2)
            fh.write("\n")
        print(f"# oracle reports written to {args.json}")
    return 1 if failed else 0


def _cmd_mutate(args) -> int:
    import json

    from .testgen.mutants import MUTANTS, SMOKE_MUTANTS, run_mutation_suite

    if args.list_mutants:
        for m in MUTANTS:
            mark = "" if m.expect_killed else " (identity: must survive)"
            print(f"{m.name:30s} {m.kind:9s} {m.oracle:9s} "
                  f"{m.description}{mark}")
        return 0
    names = args.mutant
    if args.smoke:
        names = list(SMOKE_MUTANTS) + list(args.mutant or [])
    report = run_mutation_suite(
        names=names, progress=lambda line: print(f"# {line}"))
    print(report.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_doc(), fh, indent=2)
            fh.write("\n")
        print(f"# kill matrix written to {args.json}")
    return 0 if report.ok else 1


def _cmd_store(args) -> int:
    import json

    from .fi.compose import compact_store, store_stats, verify_store

    path = args.path or os.environ.get("REPRO_STORE")
    if not path:
        print("error: no store path given and REPRO_STORE is not set",
              file=sys.stderr)
        return 2
    if args.action == "compact":
        report = compact_store(path)
        ok = True
    elif args.action == "verify":
        report = verify_store(path)
        ok = bool(report["ok"])
    else:
        report = store_stats(path)
        ok = True
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        for k, v in report.items():
            print(f"{k:22s} {v}")
    return 0 if ok else 1


def _cmd_experiment(which: str) -> int:
    cfg = ExperimentConfig.from_env()
    if which == "table1":
        print(render_table1(run_table1(cfg)))
    elif which == "fig2":
        print(render_figure2(run_figure2(cfg)))
    elif which == "fig3":
        print(render_figure3(run_figure3(cfg)))
    elif which == "fig17":
        print(render_figure17(run_figure17(cfg)))
    elif which == "fault-matrix":
        print(render_fault_matrix(run_fault_matrix(cfg)))
    elif which == "incremental":
        print(render_incremental(run_incremental(cfg)))
    elif which == "pruning":
        print(render_pruning(run_pruning(cfg)))
    elif which == "overhead":
        print(render_overhead(run_overhead(cfg)))
    else:
        print(render_compile_time(run_compile_time(cfg)))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "ir":
        return _cmd_ir(args)
    if args.command == "asm":
        return _cmd_asm(args)
    if args.command == "protect":
        return _cmd_protect(args)
    if args.command == "inject":
        return _cmd_inject(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "testgen":
        return _cmd_testgen(args)
    if args.command == "mutate":
        return _cmd_mutate(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "experiment":
        return _cmd_experiment(args.which)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
