"""Tests for the textual IR printer."""

from repro.frontend.codegen import compile_source
from repro.ir import types as T
from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.printer import format_instruction, print_function, print_module
from repro.ir.types import function_type


def test_print_module_structure():
    src = """
int g = 3;
int main() { print(g); return 0; }
"""
    text = print_module(compile_source(src))
    assert "; module" in text
    assert "@g = global i64 3" in text
    assert "define i64 @main()" in text
    assert "ret" in text


def test_print_zeroinit_and_arrays():
    m = Module("t")
    m.global_var("z", T.I64)
    m.global_var("arr", T.array(T.I64, 3), [1, 2, 3], is_const=True)
    text = print_module(m)
    assert "@z = global i64 zeroinitializer" in text
    assert "@arr = constant [3 x i64] [1, 2, 3]" in text


def test_volatile_global_marker():
    m = Module("t")
    m.global_var("guard", T.I64, 1, volatile=True)
    assert "@guard = volatile global i64 1" in print_module(m)


def test_format_core_instructions():
    m = Module("t")
    fn = m.add_function("f", function_type(T.I64, [T.I64]))
    b = IRBuilder(fn)
    b.set_block(b.new_block("entry"))
    g = m.global_var("g", T.array(T.I64, 4))
    p = b.gep(g, b.i64(1))
    v = b.load(p)
    s = b.add(v, fn.args[0])
    c = b.icmp("slt", s, b.i64(10))
    z = b.zext(c, T.I64)
    st = b.store(z, p)
    r = b.ret(z)
    assert format_instruction(p).startswith(f"%t{p.iid} = gep")
    assert "load i64" in format_instruction(v)
    assert "icmp slt" in format_instruction(c)
    assert "zext" in format_instruction(z)
    assert format_instruction(st).startswith("store")
    assert format_instruction(r).startswith("ret i64")


def test_attr_suffix_for_protection_metadata():
    m = Module("t")
    fn = m.add_function("f", function_type(T.VOID, []))
    b = IRBuilder(fn)
    b.set_block(b.new_block("entry"))
    x = b.add(b.i64(1), b.i64(1))
    x.attrs["dup_of"] = 7
    x.attrs["checker"] = True
    b.ret()
    line = format_instruction(x)
    assert "dup_of=%t7" in line and "checker" in line


def test_print_function_declaration():
    m = Module("t")
    fn = m.add_function("ext", function_type(T.I64, [T.F64]))
    assert print_function(fn).startswith("declare i64 @ext")
