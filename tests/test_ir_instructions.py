"""Tests for IR instruction construction and typing rules."""

import pytest

from repro.errors import IRTypeError
from repro.ir import types as T
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    Gep,
    ICmp,
    Load,
    Ret,
    Select,
    Store,
    Unreachable,
)
from repro.ir.module import BasicBlock, Module
from repro.ir.types import function_type
from repro.ir.values import const_bool, const_float, const_int


def g64(module=None, name="g", init=0):
    m = module or Module("t")
    return m.global_var(name, T.I64, init)


class TestMemoryOps:
    def test_alloca_result_type(self):
        a = Alloca(T.array(T.I64, 4))
        assert a.type is T.ptr(T.array(T.I64, 4))
        assert not a.is_ir_injection_site

    def test_load_result_type(self):
        ld = Load(g64())
        assert ld.type is T.I64
        assert ld.is_ir_injection_site

    def test_load_from_non_pointer(self):
        with pytest.raises(IRTypeError):
            Load(const_int(5))

    def test_load_of_array_rejected(self):
        m = Module("t")
        arr = m.global_var("a", T.array(T.I64, 2))
        with pytest.raises(IRTypeError):
            Load(arr)

    def test_store_no_result_and_sync(self):
        st = Store(const_int(1), g64())
        assert not st.has_result
        assert st.is_sync_point
        assert not st.is_ir_injection_site

    def test_store_type_mismatch(self):
        with pytest.raises(IRTypeError):
            Store(const_float(1.0), g64())


class TestArithmetic:
    def test_int_binop(self):
        op = BinOp("add", const_int(1), const_int(2))
        assert op.type is T.I64

    def test_float_binop(self):
        op = BinOp("fadd", const_float(1.0), const_float(2.0))
        assert op.type is T.F64

    def test_mixed_operands_rejected(self):
        with pytest.raises(IRTypeError):
            BinOp("add", const_int(1), const_float(2.0))
        with pytest.raises(IRTypeError):
            BinOp("fadd", const_int(1), const_int(2))

    def test_unknown_op(self):
        with pytest.raises(IRTypeError):
            BinOp("bogus", const_int(1), const_int(2))

    def test_width_mismatch(self):
        with pytest.raises(IRTypeError):
            BinOp("add", const_int(1, T.I32), const_int(2, T.I64))


class TestCompares:
    def test_icmp_yields_i1(self):
        c = ICmp("slt", const_int(1), const_int(2))
        assert c.type is T.I1
        assert c.pred == "slt"

    def test_icmp_bad_pred(self):
        with pytest.raises(IRTypeError):
            ICmp("lt", const_int(1), const_int(2))

    def test_fcmp_ordered_only(self):
        c = FCmp("olt", const_float(1.0), const_float(2.0))
        assert c.type is T.I1
        with pytest.raises(IRTypeError):
            FCmp("ult", const_float(1.0), const_float(2.0))

    def test_icmp_on_floats_rejected(self):
        with pytest.raises(IRTypeError):
            ICmp("eq", const_float(1.0), const_float(1.0))


class TestGep:
    def test_array_decay(self):
        m = Module("t")
        arr = m.global_var("a", T.array(T.I32, 8))
        gep = Gep(arr, const_int(3))
        assert gep.type is T.ptr(T.I32)
        assert gep.element_size == 4

    def test_scalar_pointer_arithmetic(self):
        gep = Gep(g64(), const_int(1))
        assert gep.type is T.ptr(T.I64)
        assert gep.element_size == 8

    def test_non_pointer_base(self):
        with pytest.raises(IRTypeError):
            Gep(const_int(0), const_int(0))

    def test_float_index_rejected(self):
        with pytest.raises(IRTypeError):
            Gep(g64(), const_float(0.0))


class TestCasts:
    def test_valid_casts(self):
        assert Cast("sext", const_int(1, T.I32), T.I64).type is T.I64
        assert Cast("trunc", const_int(1, T.I64), T.I1).type is T.I1
        assert Cast("sitofp", const_int(1), T.F64).type is T.F64
        assert Cast("fptosi", const_float(1.0), T.I64).type is T.I64

    def test_invalid_direction(self):
        with pytest.raises(IRTypeError):
            Cast("sext", const_int(1, T.I64), T.I32)
        with pytest.raises(IRTypeError):
            Cast("trunc", const_int(1, T.I32), T.I64)

    def test_bitcast_pointers_only(self):
        m = Module("t")
        arr = m.global_var("a", T.array(T.I64, 2))
        c = Cast("bitcast", arr, T.ptr(T.I64))
        assert c.type is T.ptr(T.I64)
        with pytest.raises(IRTypeError):
            Cast("bitcast", const_int(0), T.ptr(T.I64))


class TestSelectAndCalls:
    def test_select(self):
        s = Select(const_bool(True), const_int(1), const_int(2))
        assert s.type is T.I64

    def test_select_needs_i1(self):
        with pytest.raises(IRTypeError):
            Select(const_int(1), const_int(1), const_int(2))

    def test_call_to_function(self):
        m = Module("t")
        f = m.add_function("f", function_type(T.I64, [T.I64]))
        call = Call(f, [const_int(1)])
        assert call.type is T.I64
        assert call.has_result
        assert call.is_sync_point
        assert call.callee_name == "f"

    def test_call_arity_checked(self):
        m = Module("t")
        f = m.add_function("f", function_type(T.I64, [T.I64]))
        with pytest.raises(IRTypeError):
            Call(f, [])

    def test_call_arg_type_checked(self):
        m = Module("t")
        f = m.add_function("f", function_type(T.I64, [T.I64]))
        with pytest.raises(IRTypeError):
            Call(f, [const_float(1.0)])

    def test_intrinsic_call_needs_ret_type(self):
        with pytest.raises(IRTypeError):
            Call("print_i64", [const_int(1)])
        c = Call("print_i64", [const_int(1)], ret_type=T.VOID)
        assert not c.has_result
        assert not c.is_ir_injection_site


class TestTerminators:
    def test_br_successors(self):
        bb = BasicBlock("x")
        br = Br(bb)
        assert br.is_terminator
        assert br.successors() == [bb]

    def test_condbr(self):
        t, e = BasicBlock("t"), BasicBlock("e")
        cb = CondBr(const_bool(True), t, e)
        assert cb.successors() == [t, e]
        assert cb.is_sync_point

    def test_condbr_needs_i1(self):
        with pytest.raises(IRTypeError):
            CondBr(const_int(1), BasicBlock("t"), BasicBlock("e"))

    def test_ret(self):
        assert Ret().value is None
        assert Ret(const_int(1)).value.value == 1
        assert Ret().is_terminator

    def test_unreachable(self):
        u = Unreachable()
        assert u.is_terminator
        assert u.describe() == "unreachable"


class TestMetadata:
    def test_shadow_and_checker_flags(self):
        inst = BinOp("add", const_int(1), const_int(2))
        assert not inst.is_shadow and not inst.is_checker
        inst.attrs["dup_of"] = 42
        inst.attrs["checker"] = True
        inst.attrs["protected"] = True
        assert inst.is_shadow and inst.is_checker and inst.is_protected
