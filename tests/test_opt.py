"""Tests for the IR optimization passes."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.errors import IRError
from repro.execresult import RunStatus
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import run_ir
from repro.ir.verifier import verify_module
from repro.opt import (
    constant_fold,
    dead_code_elimination,
    optimize_module,
    simplify_cfg,
)
from repro.protection.duplication import duplicate_module


def opt_and_check(src: str):
    module = compile_source(src)
    golden = run_ir(module)
    stats = optimize_module(module)
    verify_module(module)
    res = run_ir(module)
    assert res.status is RunStatus.OK
    assert res.output == golden.output
    return module, golden, res, stats


class TestConstantFold:
    def test_folds_constant_arithmetic(self):
        module = compile_source(
            "int main() { print(2 + 3 * 4); return 0; }"
        )
        n = constant_fold(module)
        assert n >= 2
        assert run_ir(module).output == "14\n"

    def test_preserves_constant_division_by_zero(self):
        module = compile_source("int main() { print(1 / 0); return 0; }")
        constant_fold(module)
        res = run_ir(module)
        assert res.status is RunStatus.TRAP
        assert res.trap_kind == "div-by-zero"

    def test_folds_compares_and_casts(self):
        module = compile_source(
            "int main() { print((3 < 4) + int(2.5)); return 0; }"
        )
        constant_fold(module)
        assert run_ir(module).output == "3\n"

    def test_float_folding(self):
        module = compile_source("int main() { print(1.5 * 4.0); return 0; }")
        n = constant_fold(module)
        assert n >= 1
        assert run_ir(module).output == "6\n"


class TestDce:
    def test_removes_unused_computation(self):
        src = "int main() { int unused = 5 * 7; print(1); return 0; }"
        module = compile_source(src)
        before = module.static_instruction_count()
        dead_code_elimination(module)
        # the unused load chain may leave the store; fold first for full
        # cleanup — here at least the unused loads must not remain
        assert module.static_instruction_count() <= before

    def test_never_removes_stores_calls_or_volatile(self):
        src = "int g = 0; int main() { g = 5; print(g); return 0; }"
        module = compile_source(src)
        stores = sum(1 for i in module.instructions() if i.opcode == "store")
        calls = sum(1 for i in module.instructions() if i.opcode == "call")
        dead_code_elimination(module)
        assert sum(1 for i in module.instructions() if i.opcode == "store") == stores
        assert sum(1 for i in module.instructions() if i.opcode == "call") == calls

    def test_semantics_preserved(self):
        opt_and_check("""
int data[4] = {1, 2, 3, 4};
int main() {
    int s = 0;
    for (int i = 0; i < 4; i++) { s += data[i]; }
    print(s);
    return 0;
}
""")


class TestSimplifyCfg:
    def test_folds_constant_branch(self):
        src = "int main() { if (1 < 2) { print(1); } else { print(2); } return 0; }"
        module = compile_source(src)
        constant_fold(module)
        n = simplify_cfg(module)
        assert n > 0
        verify_module(module)
        assert run_ir(module).output == "1\n"

    def test_removes_unreachable_code(self):
        src = "int main() { return 1; print(999); }"
        module = compile_source(src)
        before = len(module.function("main").blocks)
        simplify_cfg(module)
        after = len(module.function("main").blocks)
        assert after <= before
        verify_module(module)

    def test_merges_chains(self):
        module = compile_source(
            "int main() { int x = 1; { int y = 2; print(x + y); } return 0; }"
        )
        simplify_cfg(module)
        verify_module(module)
        assert run_ir(module).output == "3\n"
        # entry + merged body should be a short block list
        assert len(module.function("main").blocks) <= 2


class TestPipeline:
    @pytest.mark.parametrize("bench", ["crc32", "pathfinder", "lud", "ep"])
    def test_benchmarks_optimize_safely(self, bench):
        from repro.benchsuite.registry import load_source

        module = compile_source(load_source(bench, "tiny"), bench)
        golden = run_ir(module)
        stats = optimize_module(module)
        verify_module(module)
        res = run_ir(module)
        assert res.output == golden.output
        # optimization must not slow the program down
        assert res.dyn_total <= golden.dyn_total

    def test_stats_reported(self):
        _, _, _, stats = opt_and_check(
            "int main() { print(1 + 1); if (1) { print(2); } return 0; }"
        )
        assert stats.total > 0
        assert "constant_fold" in stats

    def test_refuses_protected_modules(self):
        module = compile_source("int g = 1; int main() { print(g + 1); return 0; }")
        duplicate_module(module)
        with pytest.raises(IRError, match="protected"):
            optimize_module(module)

    def test_allow_protected_demonstrates_protection_deletion(self):
        """Running DCE+folding after duplication deletes shadows — the
        paper's §5.2 optimization-vs-protection conflict in one test."""
        module = compile_source("int g = 1; int main() { print(g + 1); return 0; }")
        duplicate_module(module)
        shadows_before = sum(1 for i in module.instructions() if i.is_shadow)
        golden = run_ir(module)
        optimize_module(module, allow_protected=True)
        verify_module(module)
        assert run_ir(module).output == golden.output
        shadows_after = sum(1 for i in module.instructions() if i.is_shadow)
        assert shadows_after <= shadows_before

    def test_protection_after_optimization_composes(self):
        src = """
int data[6] = {9, 4, 7, 1, 8, 2};
int main() {
    int best = data[0];
    for (int i = 1; i < 6; i++) {
        if (data[i] > best) { best = data[i]; }
    }
    print(best + (2 * 3));
    return 0;
}
"""
        module = compile_source(src)
        golden = run_ir(module)
        optimize_module(module)
        duplicate_module(module)
        verify_module(module)
        assert run_ir(module).output == golden.output

    def test_cross_layer_equivalence_after_opt(self):
        from repro.backend.lower import lower_module
        from repro.interp.layout import GlobalLayout
        from repro.machine.machine import compile_program, run_asm

        src = "int main() { int s = 0; for (int i = 0; i < 9; i++) { s += i * 2; } print(s + 1 * 3); return 0; }"
        module = compile_source(src)
        optimize_module(module)
        layout = GlobalLayout(module)
        compiled = compile_program(lower_module(module, layout).flatten())
        assert run_asm(compiled, layout).output == run_ir(module, layout=layout).output
