"""Oracle tests: benchmark kernels vs reference implementations.

Each MiniC kernel is cross-checked against an independent reference
(numpy / scipy / networkx / pure Python) on the *same generated input
data*, so a silent kernel bug cannot hide behind a stable golden
output.
"""

import math

import networkx as nx
import numpy as np
import pytest

from repro.benchsuite.programs._data import rng
from repro.benchsuite.registry import load_source
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import run_ir


def outputs(name, scale="tiny"):
    module = compile_source(load_source(name, scale), name)
    res = run_ir(module)
    assert res.status.value == "ok"
    return res.output.strip().split("\n")


class TestGraphOracle:
    def test_bfs_matches_networkx(self):
        # rebuild the same CSR graph the generator embeds
        g = rng(202)
        n_nodes, avg_deg = 12, 2
        edges = []
        offsets = [0]
        for u in range(n_nodes):
            deg = int(g.integers(1, avg_deg * 2 + 1))
            targets = sorted(set(int(v) for v in g.integers(0, n_nodes, deg)))
            edges.extend((u, v) for v in targets)
            offsets.append(len(edges))
        G = nx.DiGraph()
        G.add_nodes_from(range(n_nodes))
        G.add_edges_from(edges)
        depths = nx.single_source_shortest_path_length(G, 0)

        out = outputs("bfs")
        costs = [int(x) for x in out[:n_nodes]]
        for node in range(n_nodes):
            expected = depths.get(node, -1)
            assert costs[node] == expected, f"node {node}"
        assert int(out[-2]) == len(depths)
        assert int(out[-1]) == sum(depths.values())


class TestDpOracles:
    def test_pathfinder_matches_reference_dp(self):
        g = rng(303)
        rows, cols = 4, 6
        wall = np.array(g.integers(1, 10, rows * cols)).reshape(rows, cols)
        dp = wall[0].astype(int).copy()
        for r in range(1, rows):
            new = np.empty_like(dp)
            for j in range(cols):
                best = dp[j]
                if j > 0:
                    best = min(best, dp[j - 1])
                if j < cols - 1:
                    best = min(best, dp[j + 1])
                new[j] = wall[r, j] + best
            dp = new
        out = outputs("pathfinder")
        assert [int(x) for x in out[:cols]] == dp.tolist()
        assert int(out[-1]) == int(dp.min())

    def test_needle_matches_reference_nw(self):
        g = rng(505)
        n = 5
        seq1 = [int(x) for x in g.integers(0, 4, n)]
        seq2 = [int(x) for x in g.integers(0, 4, n)]
        blosum = [int(x) for x in g.integers(-4, 6, 16)]
        penalty = 2
        dim = n + 1
        table = [[0] * dim for _ in range(dim)]
        for i in range(dim):
            table[i][0] = -i * penalty
            table[0][i] = -i * penalty
        for i in range(1, dim):
            for j in range(1, dim):
                match = (table[i - 1][j - 1]
                         + blosum[seq1[i - 1] * 4 + seq2[j - 1]])
                dele = table[i - 1][j] - penalty
                ins = table[i][j - 1] - penalty
                table[i][j] = max(match, dele, ins)
        out = outputs("needle")
        assert int(out[0]) == table[n][n]
        assert int(out[1]) == sum(table[i][i] for i in range(dim))


class TestNumericOracles:
    def test_fft2_matches_numpy(self):
        g = rng(909)
        n = 8
        signal = np.array([
            math.sin(2 * math.pi * 3 * i / n) + 0.5 * float(g.uniform(-1, 1))
            for i in range(n)
        ])
        spectrum = np.abs(np.fft.fft(signal))[: n // 2]
        out = [float(x) for x in outputs("fft2")]
        assert np.allclose(out, spectrum, rtol=1e-4, atol=1e-4)

    def test_cg_converges_to_numpy_solution(self):
        # rebuild the SPD system and check the kernel's residual is the
        # true residual of *some* iterate close to the solution
        g = rng(707)
        n, nnz_row = 5, 2
        dense = np.zeros((n, n))
        for i in range(n):
            cols = g.choice(n, size=min(nnz_row, n), replace=False)
            for j in cols:
                v = float(g.uniform(-1, 1))
                dense[i, j] += v
                dense[j, i] += v
        for i in range(n):
            dense[i, i] = abs(dense[i]).sum() + 1.0
        b = np.array(g.uniform(0.0, 1.0, n))
        x_true = np.linalg.solve(dense, b)

        out = [float(x) for x in outputs("cg")]
        residual, xsum = out
        # 3 CG iterations on a 5x5 SPD system: close to converged
        assert residual < 1e-2
        assert xsum == pytest.approx(x_true.sum(), abs=1e-2)

    def test_knn_matches_numpy_argsort(self):
        g = rng(606)
        n, k = 8, 2
        lat = np.array(g.uniform(0.0, 90.0, n))
        lng = np.array(g.uniform(0.0, 180.0, n))
        d = np.sqrt((lat - 45.0) ** 2 + (lng - 90.0) ** 2)
        expected = np.argsort(d, kind="stable")[:k]
        out = outputs("knn")
        picks = [int(out[2 * i]) for i in range(k)]
        dists = [float(out[2 * i + 1]) for i in range(k)]
        assert picks == expected.tolist()
        assert np.allclose(dists, np.sort(d)[:k], rtol=1e-4)

    def test_ep_matches_python_lcg(self):
        # simulate the kernel's 31-bit LCG + polar acceptance in Python
        state = 271828183

        def lcg():
            nonlocal state
            state = (state * 1103515245 + 12345) % 2147483648
            if state < 0:  # mirror the MiniC srem semantics
                state = -state
            return state / 2147483648.0

        accepted = 0
        sx = sy = 0.0
        for _ in range(24):
            x = 2.0 * lcg() - 1.0
            y = 2.0 * lcg() - 1.0
            t = x * x + y * y
            if 0.0 < t <= 1.0:
                factor = math.sqrt(-2.0 * math.log(t) / t)
                sx += x * factor
                sy += y * factor
                accepted += 1
        out = outputs("ep")
        assert int(out[0]) == accepted
        assert float(out[1]) == pytest.approx(sx, rel=1e-4)
        assert float(out[2]) == pytest.approx(sy, rel=1e-4)

    def test_basicmath_cubic_roots_match_numpy(self):
        g = rng(121)
        n = 3
        cb = np.array(g.uniform(-5, 5, n))
        cc = np.array(g.uniform(-10, 10, n))
        cd = np.array(g.uniform(-20, 20, n))
        out = [float(x) for x in outputs("basicmath")[:n]]
        for i in range(n):
            q = (3 * cc[i] - cb[i] ** 2) / 9.0
            r = (9 * cb[i] * cc[i] - 27 * cd[i] - 2 * cb[i] ** 3) / 54.0
            disc = q ** 3 + r ** 2
            if disc > 0:
                # single real root: compare with numpy's root finder
                roots = np.roots([1.0, cb[i], cc[i], cd[i]])
                real = roots[np.isreal(roots)].real
                assert out[i] == pytest.approx(real[0], rel=1e-3)
            else:
                assert out[i] == pytest.approx(disc, rel=1e-4)


class TestSusanOracle:
    def test_susan_matches_python_reimplementation(self):
        g = rng(131)
        h = w = 5
        img = np.array(g.integers(0, 256, h * w)).reshape(h, w)
        corners = 0
        checksum = 0
        response = np.zeros((h, w), dtype=int)
        for y in range(1, h - 1):
            for x in range(1, w - 1):
                center = img[y, x]
                usan = sum(
                    1
                    for dy in (-1, 0, 1)
                    for dx in (-1, 0, 1)
                    if (dy or dx) and abs(int(img[y + dy, x + dx]) - int(center)) < 27
                )
                if usan < 6:
                    response[y, x] = 6 - usan
                    corners += 1
        for i in range(h * w):
            checksum += int(response.flat[i]) * (i % 13 + 1)
        out = outputs("susan")
        assert int(out[0]) == corners
        assert int(out[1]) == checksum


class TestPatriciaOracle:
    def test_patricia_lookup_results_sound(self):
        # hits reported by the trie must be a subset of true membership,
        # and every true miss must be reported as a miss
        g = rng(151)
        keys = sorted(set(int(k) for k in g.integers(0, 1 << 16, 6)))
        lookups = [int(k) for k in g.integers(0, 1 << 16, 5 // 2)]
        lookups += [keys[int(i)] for i in g.integers(0, len(keys), 5 - len(lookups))]
        out = outputs("patricia")
        found = [int(x) for x in out[: len(lookups)]]
        keyset = set(keys)
        for key, hit in zip(lookups, found):
            if hit:
                assert key in keyset, f"false positive for {key}"
            if key not in keyset:
                assert not hit, f"must miss {key}"
