"""Tests for the Flowery mitigation passes (§6)."""

import pytest

from repro.backend.isa import Role
from repro.backend.lower import lower_module
from repro.execresult import RunStatus
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import run_ir
from repro.interp.layout import GlobalLayout
from repro.ir.verifier import verify_module
from repro.machine.machine import compile_program, run_asm
from repro.protection.duplication import duplicate_module
from repro.protection.flowery import (
    EXPECT_GLOBAL,
    GUARD_GLOBAL,
    anti_comparison_duplication,
    apply_flowery,
    postponed_branch_check,
)

BRANCHY = """
int a = 1;
int b = 2;
int out = 0;
int main() {
    if (a < b) { out = 10; } else { out = 20; }
    for (int i = 0; i < 5; i++) { out += i; }
    print(out);
    return 0;
}
"""


def protected(src=BRANCHY, store_mode="lazy"):
    module = compile_source(src)
    info = duplicate_module(module, store_mode=store_mode)
    return module, info


class TestPostponedBranch:
    def test_instrumentation_count(self):
        module, info = protected()
        n = postponed_branch_check(module, info)
        assert n > 0
        verify_module(module)

    def test_expect_global_created(self):
        module, info = protected()
        postponed_branch_check(module, info)
        assert EXPECT_GLOBAL in module.globals

    def test_semantics_preserved(self):
        module, info = protected()
        golden = run_ir(compile_source(BRANCHY))
        postponed_branch_check(module, info)
        res = run_ir(module)
        assert res.status is RunStatus.OK
        assert res.output == golden.output

    def test_edge_blocks_inserted(self):
        module, info = protected()
        before = len(module.function("main").blocks)
        n = postponed_branch_check(module, info)
        after = len(module.function("main").blocks)
        assert after >= before + 2 * n  # two verify blocks per branch

    def test_idempotent(self):
        module, info = protected()
        n1 = postponed_branch_check(module, info)
        n2 = postponed_branch_check(module, info)
        assert n2 == 0

    def test_detects_wrong_direction_jumps(self):
        """A fault in the branch's test FLAGS must now be *detected*
        instead of silently corrupting output."""
        module, info = protected()
        postponed_branch_check(module, info)
        layout = GlobalLayout(module)
        asm = lower_module(module, layout)
        compiled = compile_program(asm.flatten())
        golden = run_asm(compiled, layout)
        # find dynamic indices of br-test instructions and flip ZF there
        res = run_asm(compiled, layout, profile=True)
        test_sites = [
            idx for idx in compiled.injectable_static
            if compiled.inst_at(idx).role == Role.BR_TEST
        ]
        assert test_sites, "protected branches must still lower via test"
        # sweep all injectable positions; every escape among br-test
        # faults must be caught
        sdc_from_brtest = 0
        detected = 0
        for i in range(golden.dyn_injectable):
            r = run_asm(compiled, layout, inject_index=i, inject_bit=0,
                        max_steps=golden.dyn_total * 4)
            if r.extra.get("asm_role") == Role.BR_TEST:
                if r.status is RunStatus.OK and r.output != golden.output:
                    sdc_from_brtest += 1
                if r.status is RunStatus.DETECTED:
                    detected += 1
        assert sdc_from_brtest == 0
        assert detected > 0


class TestAntiComparison:
    CMP_SRC = """
int a = 1;
int b = 2;
int main() { if (a < b) { print(1); } else { print(2); } return 0; }
"""

    def test_prevents_checker_folding(self):
        module, info = protected(self.CMP_SRC)
        n = anti_comparison_duplication(module, info)
        assert n > 0
        verify_module(module)
        asm = lower_module(module)
        assert not asm.folded_checkers

    def test_guard_global_volatile(self):
        module, info = protected(self.CMP_SRC)
        anti_comparison_duplication(module, info)
        guard = module.globals[GUARD_GLOBAL]
        assert guard.volatile

    def test_semantics_preserved(self):
        module, info = protected(self.CMP_SRC)
        golden = run_ir(compile_source(self.CMP_SRC))
        anti_comparison_duplication(module, info)
        res = run_ir(module)
        assert res.output == golden.output

    def test_cross_layer_outputs_match(self):
        module, info = protected(self.CMP_SRC)
        anti_comparison_duplication(module, info)
        layout = GlobalLayout(module)
        compiled = compile_program(lower_module(module, layout).flatten())
        assert run_asm(compiled, layout).output == run_ir(module, layout=layout).output

    def test_only_compare_checkers_transformed(self):
        src = "int g = 0; int main() { int x = 1 + 2; g = x; return 0; }"
        module, info = protected(src)
        n = anti_comparison_duplication(module, info)
        assert n == 0  # arithmetic checkers don't fold, nothing to harden

    def test_idempotent(self):
        module, info = protected(self.CMP_SRC)
        n1 = anti_comparison_duplication(module, info)
        n2 = anti_comparison_duplication(module, info)
        assert n2 == 0

    def test_shared_shadow_between_two_checkers(self):
        # `x < y` feeding both a store (via value use) and a branch used
        # to break the original move-based implementation
        src = """
int x = 1;
int y = 2;
int keep = 0;
int main() {
    int c = x < y;
    keep = c;
    if (c == 1) { print(7); }
    return 0;
}
"""
        module, info = protected(src)
        anti_comparison_duplication(module, info)
        verify_module(module)
        assert run_ir(module).output == "7\n"


class TestEagerStore:
    def test_store_precedes_checkers(self):
        src = "int g = 0; int main() { int x = 1; g = x + 2; return 0; }"
        module = compile_source(src)
        duplicate_module(module, store_mode="eager")
        verify_module(module)
        # find the protected store; its checkers must come after it
        fn = module.function("main")
        insts = list(fn.instructions())
        store_pos = [
            i for i, inst in enumerate(insts)
            if inst.opcode == "store" and inst.attrs.get("sync_checked")
        ]
        checker_pos = [
            i for i, inst in enumerate(insts) if inst.is_checker
            and not inst.is_terminator
        ]
        assert store_pos and checker_pos
        assert min(checker_pos) > store_pos[0]


class TestApplyFlowery:
    def test_stats_and_verification(self):
        module, info = protected()
        stats = apply_flowery(module, info)
        assert stats["postponed_branch"] > 0
        verify_module(module)

    def test_partial_application(self):
        module, info = protected()
        stats = apply_flowery(module, info, branch_patch=False)
        assert stats["postponed_branch"] == 0

    def test_full_pipeline_output_stable(self):
        golden = run_ir(compile_source(BRANCHY))
        module, info = protected(store_mode="eager")
        apply_flowery(module, info)
        layout = GlobalLayout(module)
        compiled = compile_program(lower_module(module, layout).flatten())
        assert run_ir(module, layout=layout).output == golden.output
        assert run_asm(compiled, layout).output == golden.output
