"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.backend.lower import lower_module
from repro.frontend.codegen import compile_source
from repro.interp.layout import GlobalLayout
from repro.machine.machine import compile_program


#: a small program exercising most of MiniC: globals, arrays, calls,
#: loops, branches, float math, recursion
KITCHEN_SINK = """
int a = 7;
int b = 9;
int out = 0;
int acc[16];

int fib(int n) {
    if (n <= 1) { return n; }
    return fib(n - 1) + fib(n - 2);
}

int main() {
    int x = a;
    int y = b;
    if (x < y) { out = x + y; } else { out = x - y; }
    print(out);
    int s = 0;
    for (int i = 0; i < 10; i++) { s += i * i; acc[i % 16] = s; }
    print(s);
    print(float(s) / 3.0);
    print(acc[9]);
    print(fib(8));
    return 0;
}
"""

KITCHEN_SINK_OUTPUT = "16\n285\n95\n285\n21\n"


@pytest.fixture
def sink_module():
    return compile_source(KITCHEN_SINK, "sink")


@pytest.fixture
def sink_built():
    """(module, layout, asm_program, compiled) for the kitchen sink."""
    module = compile_source(KITCHEN_SINK, "sink")
    layout = GlobalLayout(module)
    asm = lower_module(module, layout)
    compiled = compile_program(asm.flatten())
    return module, layout, asm, compiled



