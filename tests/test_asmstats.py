"""Tests for assembly statistics."""

from repro.analysis.asmstats import (
    dynamic_role_histogram,
    static_stats,
)
from repro.backend.isa import Role
from repro.machine.machine import run_asm
from repro.pipeline import build


class TestStaticStats:
    def test_totals_consistent(self):
        built = build("crc32", scale="tiny")
        stats = static_stats(built.asm)
        assert stats.total == built.asm.static_count()
        assert sum(stats.by_opcode.values()) == stats.total
        assert sum(stats.by_role.values()) == stats.total
        assert 0 < stats.injectable < stats.total
        assert 0 < stats.injectable_fraction < 1

    def test_frame_code_unmapped(self):
        built = build("crc32", scale="tiny")
        stats = static_stats(built.asm)
        assert stats.unmapped >= 2  # at least prologue push/mov per fn

    def test_penetration_surface_appears_under_protection(self):
        plain = static_stats(build("pathfinder", scale="tiny").asm)
        protected = static_stats(
            build("pathfinder", scale="tiny", level=100).asm
        )
        plain_surface = plain.penetration_surface()
        prot_surface = protected.penetration_surface()
        # protection *creates* store and branch penetration surface
        assert prot_surface["store"] > plain_surface["store"]
        assert prot_surface["branch"] > plain_surface["branch"]

    def test_role_fraction(self):
        built = build("quicksort", scale="tiny")
        stats = static_stats(built.asm)
        assert stats.role_fraction(Role.CALL_ARG) > 0  # call-dense kernel


class TestDynamicHistogram:
    def test_histogram_matches_profile(self):
        built = build("crc32", scale="tiny")
        res = run_asm(built.compiled, built.layout, profile=True)
        hist = dynamic_role_histogram(built.compiled, res.per_inst_counts)
        assert sum(hist.values()) == res.dyn_total
        assert Role.MAIN in hist
