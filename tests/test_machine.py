"""Tests for the assembly machine: semantics, traps, injection."""

import pytest

from repro.execresult import RunStatus
from repro.machine.machine import AsmMachine, compile_program, run_asm

from tests.helpers import compile_and_build


def asm_out(src: str, **kwargs):
    _, layout, _, compiled = compile_and_build(src)
    return run_asm(compiled, layout, **kwargs)


class TestSemantics:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("5 + 6", "11"),
            ("5 - 9", "-4"),
            ("-6 * 7", "-42"),
            ("17 / -5", "-3"),
            ("-17 % 5", "-2"),
            ("1 << 62", str(1 << 62)),
            ("-64 >> 3", "-8"),
            ("0xF0 & 0x3C", str(0xF0 & 0x3C)),
            ("0xF0 | 0x0F", "255"),
            ("0xFF ^ 0x0F", "240"),
            ("(3 < 4) + (4 < 3)", "1"),
            ("1.5 * 4.0", "6"),
            ("7.0 / 2.0", "3.5"),
            ("int(9.99)", "9"),
            ("float(3) / 2.0", "1.5"),
        ],
    )
    def test_expressions(self, expr, expected):
        res = asm_out(f"int main() {{ print({expr}); return 0; }}")
        assert res.status is RunStatus.OK
        assert res.output == expected + "\n"

    def test_nan_comparisons_all_false(self):
        src = """
int main() {
    float n = sqrt(-1.0);
    print(n < 1.0);
    print(n > 1.0);
    print(n == n);
    print(n != n);
    return 0;
}
"""
        # ordered predicates: everything false on NaN (incl. one/!=)
        assert asm_out(src).output == "0\n0\n0\n0\n"

    def test_signed_compares(self):
        src = "int main() { int a = -1; int b = 1; print(a < b); return 0; }"
        assert asm_out(src).output == "1\n"

    def test_recursion_and_stack(self):
        src = """
int depth(int n) { if (n == 0) { return 0; } return 1 + depth(n - 1); }
int main() { print(depth(50)); return 0; }
"""
        assert asm_out(src).output == "50\n"


class TestTraps:
    def test_div_by_zero(self):
        res = asm_out("int main() { int z = 0; print(5 / z); return 0; }")
        assert res.status is RunStatus.TRAP
        assert res.trap_kind == "div-by-zero"

    def test_wild_store_segfaults(self):
        src = """
int a[2];
int main() { int i = -90000000; a[i] = 1; return 0; }
"""
        res = asm_out(src)
        assert res.status is RunStatus.TRAP
        assert res.trap_kind == "segfault"

    def test_infinite_recursion_overflows_stack(self):
        src = "int f(int n) { return f(n); } int main() { return f(1); }"
        res = asm_out(src, max_steps=2_000_000)
        assert res.status is RunStatus.TRAP
        assert res.trap_kind in ("stack-overflow", "step-budget")

    def test_timeout(self):
        res = asm_out("int main() { while (1) { } return 0; }",
                      max_steps=500)
        assert res.status is RunStatus.TRAP
        assert res.trap_kind == "step-budget"
        assert res.dyn_total > 0


class TestCounting:
    def test_deterministic(self, sink_built):
        _, layout, _, compiled = sink_built
        a = run_asm(compiled, layout)
        b = run_asm(compiled, layout)
        assert (a.dyn_total, a.dyn_injectable) == (b.dyn_total, b.dyn_injectable)
        assert a.output == b.output

    def test_injectable_subset_of_total(self, sink_built):
        _, layout, _, compiled = sink_built
        res = run_asm(compiled, layout)
        assert 0 < res.dyn_injectable < res.dyn_total

    def test_profile_counts(self, sink_built):
        _, layout, _, compiled = sink_built
        res = run_asm(compiled, layout, profile=True)
        assert sum(res.per_inst_counts.values()) == res.dyn_total

    def test_injectable_static_sites_consistent(self, sink_built):
        _, layout, _, compiled = sink_built
        res = run_asm(compiled, layout, profile=True)
        dynamic_injectable = sum(
            n for idx, n in res.per_inst_counts.items()
            if compiled.inj_kind[idx]
        )
        assert dynamic_injectable == res.dyn_injectable


class TestInjection:
    def test_attribution_fields(self, sink_built):
        _, layout, _, compiled = sink_built
        res = run_asm(compiled, layout, inject_index=5, inject_bit=1)
        assert res.injected
        assert res.extra["asm_index"] is not None
        assert res.extra["asm_role"]
        assert res.extra["asm_opcode"]

    def test_out_of_range_noop(self, sink_built):
        _, layout, _, compiled = sink_built
        golden = run_asm(compiled, layout)
        res = run_asm(compiled, layout,
                      inject_index=golden.dyn_injectable + 1)
        assert not res.injected
        assert res.output == golden.output

    def test_determinism(self, sink_built):
        _, layout, _, compiled = sink_built
        a = run_asm(compiled, layout, inject_index=33, inject_bit=17)
        b = run_asm(compiled, layout, inject_index=33, inject_bit=17)
        assert a.status == b.status and a.output == b.output
        assert a.extra.get("asm_index") == b.extra.get("asm_index")

    def test_flags_injection_can_flip_branch(self):
        # inject into every dynamic site of a branchy program with bit
        # pattern 0 (flips ZF on flag sites) — at least one run must take
        # the wrong branch
        src = """
int main() {
    int x = 3;
    if (x > 10) { print(111); } else { print(222); }
    return 0;
}
"""
        _, layout, _, compiled = compile_and_build(src)
        golden = run_asm(compiled, layout)
        outputs = set()
        for i in range(golden.dyn_injectable):
            for bit in range(5):  # cover all five FLAGS bits
                r = run_asm(compiled, layout, inject_index=i, inject_bit=bit,
                            max_steps=10_000)
                if r.status is RunStatus.OK:
                    outputs.add(r.output)
        assert "111\n" in outputs

    def test_gpr_injection_changes_value(self):
        src = "int main() { int x = 0; print(x + 0); return 0; }"
        _, layout, _, compiled = compile_and_build(src)
        golden = run_asm(compiled, layout)
        changed = 0
        for i in range(golden.dyn_injectable):
            r = run_asm(compiled, layout, inject_index=i, inject_bit=40,
                        max_steps=10_000)
            if r.status is not RunStatus.OK or r.output != golden.output:
                changed += 1
        assert changed > 0


class TestCompilation:
    def test_all_benchmark_opcodes_compile(self, sink_built):
        _, _, asm, compiled = sink_built
        assert len(compiled.uops) == len(asm.flatten().insts)

    def test_injectable_static_indices(self, sink_built):
        _, _, _, compiled = sink_built
        for idx in compiled.injectable_static:
            assert compiled.inj_kind[idx] != 0
