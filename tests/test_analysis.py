"""Tests for coverage computation and the root-cause classifier."""

import pytest

from repro.analysis.coverage import CoveragePoint, sdc_coverage
from repro.analysis.rootcause import (
    Penetration,
    PenetrationReport,
    RootCauseClassifier,
    classify_campaign,
)
from repro.backend.isa import Role
from repro.backend.lower import lower_module
from repro.fi.campaign import CampaignConfig, InjectionRecord, run_asm_campaign
from repro.fi.outcomes import Outcome
from repro.frontend.codegen import compile_source
from repro.interp.layout import GlobalLayout
from repro.machine.machine import compile_program
from repro.protection.duplication import duplicate_module


class TestCoverageFormula:
    def test_perfect_protection(self):
        assert sdc_coverage(0.4, 0.0) == 1.0

    def test_no_protection(self):
        assert sdc_coverage(0.4, 0.4) == 0.0

    def test_partial(self):
        assert sdc_coverage(0.5, 0.25) == 0.5

    def test_no_raw_sdcs(self):
        assert sdc_coverage(0.0, 0.0) == 1.0

    def test_noise_clamped(self):
        assert sdc_coverage(0.1, 0.2) == 0.0

    def test_coverage_point_layer_mismatch_rejected(self):
        from repro.fi.campaign import CampaignResult

        a = CampaignResult("ir", 1, {}, [], "", 1, 1)
        b = CampaignResult("asm", 1, {}, [], "", 1, 1)
        with pytest.raises(ValueError):
            CoveragePoint.from_campaigns("x", 100, "id", a, b)


def _setup_protected():
    src = """
int a = 1;
int b = 2;
int out = 0;
int main() {
    int x = a + b;
    out = x;
    if (a < b) { print(out); } else { print(0); }
    return 0;
}
"""
    module = compile_source(src)
    info = duplicate_module(module)
    layout = GlobalLayout(module)
    asm = lower_module(module, layout)
    return module, info, layout, asm


def _record(role, iid, outcome=Outcome.SDC):
    return InjectionRecord(
        dyn_index=0, bit=0, outcome=outcome, iid=iid,
        asm_index=0, asm_role=role, asm_opcode="mov",
    )


class TestClassifierRules:
    @pytest.fixture()
    def clf(self):
        module, info, layout, asm = _setup_protected()
        self.module, self.info, self.asm = module, info, asm
        return RootCauseClassifier(module, asm, info)

    def _guarded_store(self):
        return next(
            i for i in self.module.instructions()
            if i.opcode == "store" and i.attrs.get("sync_checked")
        )

    def _guarded_branch(self):
        return next(
            i for i in self.module.instructions()
            if i.opcode == "condbr" and i.attrs.get("sync_checked")
        )

    def test_store_reload_on_guarded_store(self, clf):
        store = self._guarded_store()
        rec = _record(Role.STORE_RELOAD, store.iid)
        assert clf.classify(rec) is Penetration.STORE

    def test_store_addr_reload_also_store(self, clf):
        store = self._guarded_store()
        rec = _record(Role.STORE_ADDR_RELOAD, store.iid)
        assert clf.classify(rec) is Penetration.STORE

    def test_br_test_on_guarded_branch(self, clf):
        br = self._guarded_branch()
        assert clf.classify(_record(Role.BR_TEST, br.iid)) is Penetration.BRANCH
        assert clf.classify(
            _record(Role.BR_COND_RELOAD, br.iid)
        ) is Penetration.BRANCH

    def test_unknown_sync_iid_maps_to_mapping(self, clf):
        # a store iid that matches no IR instruction at all
        rec = _record(Role.STORE_RELOAD, iid=999999)
        assert clf.classify(rec) is Penetration.MAPPING

    def test_unprotected_sync_operand_is_expected_miss(self):
        # protect nothing: a store of a computed value has duplicable but
        # unprotected operands -> UNPROTECTED, not a penetration
        src = "int g = 0; int main() { int x = g + 1; g = x; return 0; }"
        module = compile_source(src)
        from repro.protection.duplication import DuplicationInfo
        from repro.ir.instructions import Instruction

        # pick the store of the computed value (operand is an Instruction)
        stores = [i for i in module.instructions() if i.opcode == "store"]
        computed = next(s for s in stores
                        if isinstance(s.operands[0], Instruction))
        asm = lower_module(module)
        clf2 = RootCauseClassifier(module, asm, DuplicationInfo())
        rec = _record(Role.STORE_RELOAD, computed.iid)
        assert clf2.classify(rec) is Penetration.UNPROTECTED

    def test_constant_arg_call_is_call_penetration_even_uncheckered(self):
        # print(7): no duplicable operands, so the arg-setup mov is a
        # genuine call penetration even though no checker guards it
        src = "int main() { print(7); return 0; }"
        module = compile_source(src)
        from repro.protection.duplication import DuplicationInfo, duplicate_module

        info = duplicate_module(module)  # full protection
        asm = lower_module(module)
        call = next(i for i in module.instructions() if i.opcode == "call")
        clf2 = RootCauseClassifier(module, asm, info)
        rec = _record(Role.CALL_ARG, call.iid)
        assert clf2.classify(rec) is Penetration.CALL

    def test_call_arg_on_guarded_call(self, clf):
        call = next(
            i for i in self.module.instructions()
            if i.opcode == "call" and i.attrs.get("sync_checked")
        )
        assert clf.classify(_record(Role.CALL_ARG, call.iid)) is Penetration.CALL

    def test_frame_roles_map_to_mapping(self, clf):
        assert clf.classify(_record(Role.FRAME, None)) is Penetration.MAPPING
        assert clf.classify(_record(Role.RET_VAL, 1)) is Penetration.MAPPING
        assert clf.classify(_record(Role.MAIN, None)) is Penetration.MAPPING

    def test_folded_checker_means_comparison(self, clf):
        assert self.asm.folded_checkers, "setup must fold a checker"
        master = next(iter(self.asm.folded_masters))
        rec = _record(Role.MAIN, master)
        assert clf.classify(rec) is Penetration.COMPARISON

    def test_unprotected_computation(self):
        module, info, layout, asm = _setup_protected()
        # protect nothing this time
        module2 = compile_source("int main() { int x = 1; print(x); return 0; }")
        from repro.protection.duplication import DuplicationInfo

        clf = RootCauseClassifier(module2, asm, DuplicationInfo())
        some_iid = next(iter(i.iid for i in module2.instructions()
                             if i.opcode == "load"))
        assert clf.classify(_record(Role.MAIN, some_iid)) is Penetration.UNPROTECTED

    def test_intact_checker_is_other(self, clf):
        # an arithmetic master with intact checkers
        add = next(
            i for i in self.module.instructions()
            if i.opcode == "add" and i.is_protected
        )
        guards = self.info.guarded_by.get(add.iid, [])
        assert guards
        if not all(g in self.asm.folded_checkers for g in guards):
            assert clf.classify(_record(Role.MAIN, add.iid)) is Penetration.OTHER


class TestPenetrationReport:
    def test_report_aggregation(self):
        rep = PenetrationReport("x", 100, {
            Penetration.STORE: 4,
            Penetration.BRANCH: 4,
            Penetration.COMPARISON: 2,
            Penetration.UNPROTECTED: 5,
        })
        assert rep.total_escapes == 15
        assert rep.total_deficiencies == 10
        shares = rep.deficiency_shares()
        assert shares[Penetration.STORE] == 0.4
        assert Penetration.UNPROTECTED not in shares

    def test_empty_report(self):
        rep = PenetrationReport("x", 100)
        assert rep.total_deficiencies == 0
        assert rep.deficiency_shares() == {}

    def test_is_deficiency_flags(self):
        assert Penetration.STORE.is_deficiency
        assert Penetration.MAPPING.is_deficiency
        assert not Penetration.UNPROTECTED.is_deficiency
        assert not Penetration.OTHER.is_deficiency


class TestEndToEndClassification:
    def test_classify_campaign_on_protected_binary(self):
        module, info, layout, asm = _setup_protected()
        compiled = compile_program(asm.flatten())
        campaign = run_asm_campaign(
            compiled, layout, CampaignConfig(n_campaigns=200, seed=4)
        )
        report = classify_campaign("toy", 100, campaign, module, asm, info)
        assert report.total_escapes == campaign.counts[Outcome.SDC]
        # full protection: every escape should be a deficiency category
        deficiency_plus_other = report.total_deficiencies + report.counts.get(
            Penetration.OTHER, 0
        )
        assert deficiency_plus_other == report.total_escapes
