"""Tests for report serialisation and the parallel campaign runner."""

import json

import pytest

from repro.analysis.coverage import CoveragePoint
from repro.analysis.report import (
    campaign_from_dict,
    campaign_to_dict,
    coverage_point_to_dict,
    dump_json,
    load_json,
    penetration_to_dict,
    per_benchmark_shares,
)
from repro.analysis.rootcause import Penetration, PenetrationReport
from repro.fi.campaign import CampaignConfig, run_ir_campaign
from repro.fi.parallel import WorkSpec, run_parallel_campaign
from repro.frontend.codegen import compile_source

SRC = """
int data[4] = {5, 2, 8, 1};
int main() {
    int s = 0;
    for (int i = 0; i < 4; i++) { s += data[i] * i; }
    print(s);
    return 0;
}
"""


class TestCampaignSerialisation:
    def test_roundtrip(self):
        module = compile_source(SRC)
        result = run_ir_campaign(module, CampaignConfig(n_campaigns=40, seed=2))
        data = campaign_to_dict(result)
        back = campaign_from_dict(data)
        assert back.counts == result.counts
        assert back.sdc_probability == result.sdc_probability
        assert len(back.records) == len(result.records)
        assert back.records[0].outcome is result.records[0].outcome

    def test_json_compatible(self, tmp_path):
        module = compile_source(SRC)
        result = run_ir_campaign(module, CampaignConfig(n_campaigns=20, seed=2))
        path = tmp_path / "campaign.json"
        dump_json(path, campaign_to_dict(result))
        loaded = load_json(path)
        back = campaign_from_dict(loaded)
        assert back.n == 20

    def test_records_optional(self):
        module = compile_source(SRC)
        result = run_ir_campaign(module, CampaignConfig(n_campaigns=10, seed=2))
        data = campaign_to_dict(result, keep_records=False)
        assert "records" not in data
        assert campaign_from_dict(data).records == []


class TestReportDicts:
    def test_penetration_report(self):
        rep = PenetrationReport("x", 100, {
            Penetration.STORE: 3, Penetration.CALL: 1,
        })
        data = penetration_to_dict(rep)
        assert data["counts"] == {"store": 3, "call": 1}
        assert data["shares"]["store"] == 0.75
        json.dumps(data)  # must be JSON-clean

    def test_coverage_point(self):
        point = CoveragePoint("x", 70, "asm", "id", 0.5, 0.1)
        data = coverage_point_to_dict(point)
        assert data["coverage"] == 0.8
        json.dumps(data)

    def test_per_benchmark_shares(self):
        reports = [
            PenetrationReport("a", 100, {Penetration.STORE: 2}),
            PenetrationReport("b", 100, {Penetration.BRANCH: 4}),
        ]
        shares = per_benchmark_shares(reports)
        assert shares["a"]["store"] == 1.0
        assert shares["b"]["branch"] == 1.0


class TestParallelRunner:
    def test_serial_fallback_matches_direct(self):
        spec = WorkSpec(source=SRC, layer="ir")
        cfg = CampaignConfig(n_campaigns=30, seed=6)
        par = run_parallel_campaign(spec, cfg, workers=1)
        module = compile_source(SRC)
        direct = run_ir_campaign(module, cfg)
        assert par.counts == direct.counts

    def test_asm_layer(self):
        spec = WorkSpec(source=SRC, layer="asm", level=100)
        cfg = CampaignConfig(n_campaigns=25, seed=6)
        res = run_parallel_campaign(spec, cfg, workers=1)
        assert res.layer == "asm"
        assert sum(res.counts.values()) == 25

    @pytest.mark.slow
    def test_two_workers_deterministic(self):
        # spawn cost on a single-core box makes this slow; it still
        # verifies the stitching logic is order-preserving
        spec = WorkSpec(source=SRC, layer="ir")
        cfg = CampaignConfig(n_campaigns=16, seed=6)
        par = run_parallel_campaign(spec, cfg, workers=2)
        ser = run_parallel_campaign(spec, cfg, workers=1)
        assert par.counts == ser.counts
        assert [(r.dyn_index, r.bit, r.outcome) for r in par.records] == \
               [(r.dyn_index, r.bit, r.outcome) for r in ser.records]

    @pytest.mark.slow
    def test_four_workers_bit_identical_result(self):
        # the docstring promises bit-identical CampaignResults for any
        # worker count; check every field, not just the histogram
        spec = WorkSpec(source=SRC, layer="asm")
        cfg = CampaignConfig(n_campaigns=20, seed=9)
        par = run_parallel_campaign(spec, cfg, workers=4)
        ser = run_parallel_campaign(spec, cfg, workers=1)
        assert par.layer == ser.layer and par.n == ser.n
        assert par.counts == ser.counts
        assert par.golden_output == ser.golden_output
        assert par.golden_dyn_total == ser.golden_dyn_total
        assert par.golden_dyn_injectable == ser.golden_dyn_injectable
        assert [
            (r.dyn_index, r.bit, r.outcome, r.iid, r.asm_index,
             r.asm_role, r.asm_opcode, r.trap_kind)
            for r in par.records
        ] == [
            (r.dyn_index, r.bit, r.outcome, r.iid, r.asm_index,
             r.asm_role, r.asm_opcode, r.trap_kind)
            for r in ser.records
        ]

    @pytest.mark.slow
    def test_parallel_observer_sees_workers(self):
        from repro.trace import CampaignObserver

        spec = WorkSpec(source=SRC, layer="ir")
        cfg = CampaignConfig(n_campaigns=8, seed=6)
        obs = CampaignObserver()
        run_parallel_campaign(spec, cfg, workers=2, observer=obs)
        assert {"build", "golden", "inject"} <= set(obs.phase_seconds())
        workers = obs.worker_events()
        assert len(workers) == 2
        assert sum(w["injections"] for w in workers) == 8
        assert sum(obs.outcome_counts().values()) == 8
