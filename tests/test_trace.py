"""Tests for the tracing subsystem: taps, lockstep differ, observer."""

import json

import pytest

from repro.backend.isa import Role
from repro.errors import CampaignError
from repro.fi.campaign import CampaignConfig, run_asm_campaign, run_ir_campaign
from repro.interp.interpreter import IRInterpreter
from repro.machine.machine import AsmMachine
from repro.pipeline import build_from_source
from repro.trace import (
    CampaignObserver,
    IRTracer,
    MachineTracer,
    SyncEvent,
    TraceConfig,
    diff_sync_streams,
    run_lockstep,
)
from tests.conftest import KITCHEN_SINK, KITCHEN_SINK_OUTPUT

#: stored value's register must survive a call, forcing a reload
#: (role STORE_RELOAD) that an asm-layer fault can corrupt just
#: before the memory write
STORE_FAULT_SRC = """
int g = 0;

int bump(int x) {
    return x + 1;
}

int main() {
    int v = bump(2) + 3;
    print(v);
    g = v;
    print(g);
    return 0;
}
"""


def _traced_pair(source, **build_kwargs):
    built = build_from_source(source, "traced", **build_kwargs)
    cfg = TraceConfig()
    ir_t = IRTracer(cfg)
    ir_res = IRInterpreter(built.module, layout=built.layout,
                           trace=ir_t).run()
    asm_t = MachineTracer(cfg, module=built.module)
    asm_res = AsmMachine(built.compiled, built.layout, trace=asm_t).run()
    return built, (ir_t, ir_res), (asm_t, asm_res)


class TestTraceConfig:
    def test_defaults(self):
        cfg = TraceConfig()
        assert cfg.mode == "sync"

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(mode="everything")

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(mode="ring", capacity=0)

    def test_bad_sample_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(mode="sample", sample_every=0)


class TestGoldenTraces:
    def test_cross_layer_sync_streams_agree(self):
        _, (ir_t, ir_res), (asm_t, asm_res) = _traced_pair(KITCHEN_SINK)
        assert ir_res.output == asm_res.output == KITCHEN_SINK_OUTPUT
        assert ir_t.trace.sync_keys() == asm_t.trace.sync_keys()
        assert len(ir_t.trace.sync) > 50

    def test_cross_layer_agreement_protected_flowery(self):
        _, (ir_t, _), (asm_t, _) = _traced_pair(
            KITCHEN_SINK, level=100, flowery=True
        )
        assert ir_t.trace.sync_keys() == asm_t.trace.sync_keys()

    def test_golden_trace_is_stable(self):
        built = build_from_source(KITCHEN_SINK, "t")
        keys = []
        for _ in range(2):
            tap = IRTracer(TraceConfig())
            IRInterpreter(built.module, layout=built.layout,
                          trace=tap).run()
            keys.append(tap.trace.sync_keys())
        assert keys[0] == keys[1]

    def test_tracing_disabled_leaves_results_unchanged(self):
        built = build_from_source(KITCHEN_SINK, "t")
        plain_ir = built.run_ir()
        plain_asm = built.run_asm()
        traced_ir = built.run_ir(trace=TraceConfig())
        traced_asm = built.run_asm(trace=TraceConfig())
        for plain, traced in ((plain_ir, traced_ir),
                              (plain_asm, traced_asm)):
            assert "trace" not in plain.extra
            assert plain.status is traced.status
            assert plain.output == traced.output
            assert plain.dyn_total == traced.dyn_total
            assert plain.dyn_injectable == traced.dyn_injectable

    def test_trace_lands_in_exec_result_extra(self):
        built = build_from_source(KITCHEN_SINK, "t")
        res = built.run_ir(trace=TraceConfig())
        trace = res.extra["trace"]
        assert trace.layer == "ir"
        assert trace.steps_seen == res.dyn_total
        res = built.run_asm(trace=TraceConfig())
        trace = res.extra["trace"]
        assert trace.layer == "asm"
        assert trace.steps_seen == res.dyn_total

    def test_output_events_reassemble_program_output(self):
        _, (ir_t, ir_res), _ = _traced_pair(KITCHEN_SINK)
        chunks = [e.value for e in ir_t.trace.sync if e.kind == "output"]
        assert "".join(chunks) == ir_res.output


class TestStepModes:
    def test_full_mode_records_every_step(self):
        built = build_from_source(STORE_FAULT_SRC, "t")
        res = built.run_ir(trace=TraceConfig(mode="full"))
        trace = res.extra["trace"]
        recs = trace.step_records()
        assert len(recs) == res.dyn_total
        assert [r.step for r in recs] == list(range(1, res.dyn_total + 1))

    def test_ring_mode_keeps_last_capacity(self):
        built = build_from_source(KITCHEN_SINK, "t")
        res = built.run_ir(trace=TraceConfig(mode="ring", capacity=32))
        trace = res.extra["trace"]
        recs = trace.step_records()
        assert len(recs) == 32
        assert recs[-1].step == res.dyn_total

    def test_sample_mode_period(self):
        built = build_from_source(KITCHEN_SINK, "t")
        res = built.run_ir(
            trace=TraceConfig(mode="sample", sample_every=10)
        )
        recs = res.extra["trace"].step_records()
        assert recs and all(r.step % 10 == 0 for r in recs)

    def test_sync_mode_keeps_no_step_records(self):
        built = build_from_source(KITCHEN_SINK, "t")
        res = built.run_ir(trace=TraceConfig())
        assert res.extra["trace"].step_records() == []

    def test_step_records_capture_values_on_machine(self):
        built = build_from_source(STORE_FAULT_SRC, "t")
        res = built.run_asm(trace=TraceConfig(mode="full"))
        recs = res.extra["trace"].step_records()
        valued = [r for r in recs if r.value is not None]
        assert valued, "expected destination values on machine step records"

    def test_sync_limit_truncates(self):
        built = build_from_source(KITCHEN_SINK, "t")
        res = built.run_ir(trace=TraceConfig(sync_limit=5))
        trace = res.extra["trace"]
        assert len(trace.sync) == 5
        assert trace.truncated

    def test_tracer_is_single_use(self):
        built = build_from_source(STORE_FAULT_SRC, "t")
        tap = IRTracer(TraceConfig())
        IRInterpreter(built.module, layout=built.layout, trace=tap).run()
        with pytest.raises(RuntimeError):
            IRInterpreter(built.module, layout=built.layout, trace=tap)

    def test_jsonl_round_trips(self):
        built = build_from_source(STORE_FAULT_SRC, "t")
        res = built.run_ir(trace=TraceConfig())
        lines = res.extra["trace"].to_jsonl().strip().split("\n")
        head = json.loads(lines[0])
        assert head["ev"] == "trace" and head["layer"] == "ir"
        kinds = {json.loads(ln)["kind"] for ln in lines[1:]}
        assert {"store", "jump", "call", "ret", "output"} <= kinds


class TestDiffSyncStreams:
    def test_identical_streams(self):
        a = [SyncEvent("jump", 1, "body"), SyncEvent("ret", 2, 7)]
        assert diff_sync_streams(a, list(a)) == (2, None)

    def test_mismatched_value(self):
        a = [SyncEvent("jump", 1, "body"), SyncEvent("ret", 2, 7)]
        b = [SyncEvent("jump", 1, "body"), SyncEvent("ret", 2, 8)]
        idx, pair = diff_sync_streams(a, b)
        assert idx == 1
        assert pair == (a[1], b[1])

    def test_shorter_stream(self):
        a = [SyncEvent("jump", 1, "body")]
        b = [SyncEvent("jump", 1, "body"), SyncEvent("ret", 2, 7)]
        idx, pair = diff_sync_streams(a, b)
        assert idx == 1
        assert pair == (None, b[1])


class TestLockstep:
    def test_golden_lockstep_agrees(self):
        built = build_from_source(KITCHEN_SINK, "t", level=70)
        report = built.lockstep()
        assert not report.diverged
        assert report.matched == report.events_a == report.events_b
        assert "no divergence" in report.narrate()

    def test_store_fault_names_the_store_sync_point(self):
        built = build_from_source(STORE_FAULT_SRC, "t")
        golden = built.run_asm()
        reload_sites = []
        for idx in range(golden.dyn_injectable):
            res = AsmMachine(built.compiled, built.layout).run(
                inject_index=idx, inject_bit=0
            )
            if res.extra.get("asm_role") == Role.STORE_RELOAD:
                reload_sites.append((idx, res.extra["asm_index"]))
        assert reload_sites, "expected a STORE_RELOAD injection site"
        dyn_idx, asm_idx = reload_sites[0]
        store_iid = built.compiled.inst_at(asm_idx).prov_iid

        report = built.lockstep(
            inject_layer="asm", inject_index=dyn_idx, inject_bit=4
        )
        assert report.diverged
        div = report.divergence
        assert div.event_a.kind == div.event_b.kind == "store"
        assert div.event_a.ref == div.event_b.ref == store_iid
        _, _, ir_bits = div.event_a.value
        _, _, asm_bits = div.event_b.value
        assert asm_bits == ir_bits ^ (1 << 4)
        text = report.narrate()
        assert "DIVERGENCE" in text and f"@{store_iid}" in text

    def test_ir_fault_caught_by_checker_shows_jump_divergence(self):
        built = build_from_source(KITCHEN_SINK, "t", level=100)
        # scan a few sites for one the checkers catch
        for idx in range(0, 60, 3):
            report = built.lockstep(
                inject_layer="ir", inject_index=idx, inject_bit=7
            )
            if report.status_a == "detected":
                assert report.diverged or report.events_a < report.events_b
                return
        pytest.skip("no detected site in the scanned range")

    def test_bad_layer_rejected(self):
        built = build_from_source(STORE_FAULT_SRC, "t")
        with pytest.raises(ValueError):
            run_lockstep(built.module, built.layout, built.compiled,
                         inject_layer="uarch", inject_index=0)


class TestCampaignObserver:
    def test_phases_workers_outcomes(self):
        obs = CampaignObserver()
        with obs.phase("compile"):
            pass
        obs.worker(0, 10, 2.0)
        obs.outcomes({"sdc": 3, "benign": 7})
        assert set(obs.phase_seconds()) == {"compile"}
        assert obs.worker_events()[0]["rate"] == 5.0
        assert obs.outcome_counts() == {"sdc": 3, "benign": 7}
        table = obs.summary()
        assert "compile" in table and "sdc" in table and "inj/s" in table

    def test_jsonl_stream(self, tmp_path):
        obs = CampaignObserver()
        obs.emit("note", detail="x")
        path = tmp_path / "events.jsonl"
        obs.write_jsonl(str(path))
        rows = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert rows[0]["ev"] == "note" and rows[0]["detail"] == "x"

    def test_serial_campaigns_report_phases_and_outcomes(self):
        built = build_from_source(STORE_FAULT_SRC, "t")
        cfg = CampaignConfig(n_campaigns=12, seed=3)
        obs = CampaignObserver()
        res = run_ir_campaign(built.module, cfg, built.layout,
                              observer=obs)
        run_asm_campaign(built.compiled, built.layout, cfg, observer=obs)
        phases = obs.phase_seconds()
        assert set(phases) == {"golden", "inject"}
        total = sum(obs.outcome_counts().values())
        assert total == 24
        assert sum(res.counts.values()) == 12

    def test_empty_summary(self):
        assert "no events" in CampaignObserver().summary()


class TestForensicsLockstep:
    def test_story_carries_divergence_report(self):
        from repro.analysis.forensics import explain_injection
        from repro.fi.outcomes import Outcome

        built = build_from_source(STORE_FAULT_SRC, "t")
        golden = built.run_asm()
        record = None
        for idx in range(golden.dyn_injectable):
            res = AsmMachine(built.compiled, built.layout).run(
                inject_index=idx, inject_bit=4
            )
            if res.output != golden.output and res.status.value == "ok":
                from repro.fi.campaign import InjectionRecord

                record = InjectionRecord(
                    dyn_index=idx, bit=4, outcome=Outcome.SDC,
                    iid=res.injected_iid,
                )
                break
        assert record is not None
        story = explain_injection(
            record, built.module, built.layout,
            compiled=built.compiled, layer="asm", lockstep=True,
        )
        assert story.lockstep is not None
        assert story.lockstep.diverged
        assert "lockstep divergence" in story.narrate()


class TestDefaultWorkers:
    def test_invalid_env_raises_campaign_error(self, monkeypatch):
        from repro.fi.parallel import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(CampaignError):
            default_workers()

    def test_env_capped_at_cpu_count(self, monkeypatch):
        import os

        from repro.fi.parallel import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "100000")
        assert default_workers() == max(1, os.cpu_count() or 1)

    def test_env_floor_of_one(self, monkeypatch):
        from repro.fi.parallel import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "-3")
        assert default_workers() == 1

    def test_env_normal_value(self, monkeypatch):
        from repro.fi.parallel import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert default_workers() == 1

    def test_unset_uses_cpu_count(self, monkeypatch):
        import os

        from repro.fi.parallel import default_workers

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == max(1, os.cpu_count() or 1)
