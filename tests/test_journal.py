"""Shared journal primitives (DESIGN §16): checksums, quarantine,
torn-tail scanning, and the advisory file lock."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.errors import StoreLockTimeout
from repro.fi.journal import (
    CRC_FIELD,
    FileLock,
    QuarantineLog,
    append_doc,
    canonical_crc,
    scan_jsonl,
    seal_doc,
)


def _write_lines(path, lines):
    with open(path, "w", encoding="utf-8") as fh:
        fh.writelines(lines)


class TestChecksums:
    def test_crc_is_key_order_independent(self):
        a = {"ev": "row", "x": 1, "y": [2, 3]}
        b = {"y": [2, 3], "x": 1, "ev": "row"}
        assert canonical_crc(a) == canonical_crc(b)

    def test_crc_ignores_existing_crc_field(self):
        doc = {"ev": "row", "x": 1}
        assert canonical_crc(seal_doc(doc)) == canonical_crc(doc)

    def test_seal_appends_crc_last(self):
        sealed = seal_doc({"ev": "row", "x": 1})
        assert list(sealed)[-1] == CRC_FIELD
        # the greppable prefix survives serialization
        assert json.dumps(sealed).startswith('{"ev": "row"')

    def test_append_doc_line_roundtrips(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            append_doc(fh, {"ev": "row", "x": 1})
        doc = json.loads(open(path).read())
        assert doc.pop(CRC_FIELD) == canonical_crc(doc)


class TestScan:
    def test_valid_lines_delivered_in_order(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            for i in range(3):
                append_doc(fh, {"i": i})
        seen = []
        stats = scan_jsonl(path, seen.append)
        assert [d["i"] for d in seen] == [0, 1, 2]
        assert stats.docs == 3
        assert stats.crc_checked == 3
        assert stats.corrupt == 0
        assert not stats.torn_tail
        assert stats.offset == os.path.getsize(path)

    def test_torn_tail_discarded_silently(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        _write_lines(path, [
            json.dumps(seal_doc({"i": 0})) + "\n",
            '{"i": 1, "tor',               # killed mid-write
        ])
        seen = []
        stats = scan_jsonl(path, seen.append)
        assert [d["i"] for d in seen] == [0]
        assert stats.torn_tail
        assert stats.corrupt == 0
        # the resume offset points at the torn line, not past it
        assert stats.offset == len(json.dumps(seal_doc({"i": 0})) + "\n")

    def test_complete_corrupt_line_is_quarantined_not_fatal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        good = json.dumps(seal_doc({"i": 0})) + "\n"
        _write_lines(path, [
            good,
            "this is not json\n",
            json.dumps(seal_doc({"i": 2})) + "\n",
        ])
        seen = []
        q = QuarantineLog(path)
        stats = scan_jsonl(path, seen.append, quarantine=q)
        # the corrupt line did NOT shadow the valid line after it
        assert [d["i"] for d in seen] == [0, 2]
        assert stats.corrupt == 1
        entries = [json.loads(ln) for ln in open(q.path)]
        assert len(entries) == 1
        assert entries[0]["offset"] == len(good)
        assert "not json" in entries[0]["line"]

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        bad = seal_doc({"i": 0})
        bad["i"] = 1                       # bitrot after sealing
        _write_lines(path, [
            json.dumps(bad) + "\n",
            json.dumps(seal_doc({"i": 2})) + "\n",
        ])
        seen = []
        stats = scan_jsonl(path, seen.append, quarantine=QuarantineLog(path))
        assert [d["i"] for d in seen] == [2]
        assert stats.corrupt == 1

    def test_legacy_lines_without_crc_accepted(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        _write_lines(path, [json.dumps({"i": 0}) + "\n"])
        seen = []
        stats = scan_jsonl(path, seen.append)
        assert [d["i"] for d in seen] == [0]
        assert stats.crc_missing == 1
        assert stats.corrupt == 0

    def test_incremental_tail_rescan_from_offset(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            append_doc(fh, {"i": 0})
        first = scan_jsonl(path, lambda d: None)
        with open(path, "a", encoding="utf-8") as fh:
            append_doc(fh, {"i": 1})
        seen = []
        second = scan_jsonl(path, seen.append, start=first.offset)
        assert [d["i"] for d in seen] == [1]
        assert second.offset == os.path.getsize(path)

    def test_crc_field_stripped_before_delivery(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "a", encoding="utf-8") as fh:
            append_doc(fh, {"i": 0})
        seen = []
        scan_jsonl(path, seen.append)
        assert CRC_FIELD not in seen[0]

    def test_quarantine_write_failure_never_raises(self, tmp_path):
        q = QuarantineLog(str(tmp_path))   # sidecar path is unwritable
        q.path = str(tmp_path)             # a directory: open() fails
        q.record(offset=0, line=b"x", reason="r")   # must not raise


class TestFileLock:
    def test_exclusive_blocks_second_holder(self, tmp_path):
        path = str(tmp_path / "s.lock")
        a = FileLock(path)
        b = FileLock(path, timeout=0.15)
        a.acquire()
        t0 = time.monotonic()
        with pytest.raises(StoreLockTimeout, match="exclusive"):
            b.acquire()
        assert time.monotonic() - t0 >= 0.1
        assert b.contended == 0 and b.acquisitions == 0
        a.release()
        b.acquire()                        # free now
        assert b.held
        b.release()

    def test_shared_holders_coexist(self, tmp_path):
        path = str(tmp_path / "s.lock")
        a, b = FileLock(path), FileLock(path, timeout=0.5)
        a.acquire(shared=True)
        b.acquire(shared=True)
        assert a.held and b.held
        a.release()
        b.release()

    def test_shared_excludes_exclusive(self, tmp_path):
        path = str(tmp_path / "s.lock")
        a, b = FileLock(path), FileLock(path, timeout=0.1)
        a.acquire(shared=True)
        with pytest.raises(StoreLockTimeout):
            b.acquire()
        a.release()

    def test_timeout_error_names_path_and_budget(self, tmp_path):
        path = str(tmp_path / "s.lock")
        a, b = FileLock(path), FileLock(path, timeout=0.1)
        a.acquire()
        with pytest.raises(StoreLockTimeout) as exc:
            b.acquire()
        msg = str(exc.value)
        assert path in msg
        assert "0.1" in msg
        assert "REPRO_STORE_LOCK_TIMEOUT" in msg
        a.release()

    def test_non_reentrant(self, tmp_path):
        a = FileLock(str(tmp_path / "s.lock"))
        a.acquire()
        with pytest.raises(StoreLockTimeout, match="non-reentrant"):
            a.acquire()
        a.release()

    def test_contention_counted_after_wait(self, tmp_path):
        path = str(tmp_path / "s.lock")
        a, b = FileLock(path), FileLock(path, timeout=5.0)
        a.acquire()
        release = threading.Timer(0.05, a.release)
        release.start()
        try:
            b.acquire()                    # waits ~50ms, then succeeds
        finally:
            release.join()
        assert b.held
        assert b.contended == 1
        assert b.acquisitions == 1
        b.release()

    def test_context_managers(self, tmp_path):
        path = str(tmp_path / "s.lock")
        lock = FileLock(path)
        with lock.exclusive():
            assert lock.held
        assert not lock.held
        with lock.shared():
            assert lock.held
        assert not lock.held

    def test_env_timeout_must_be_positive(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_LOCK_TIMEOUT", "-3")
        with pytest.raises(StoreLockTimeout, match="positive"):
            FileLock(str(tmp_path / "s.lock"))
        monkeypatch.setenv("REPRO_STORE_LOCK_TIMEOUT", "nope")
        with pytest.raises(StoreLockTimeout, match="number"):
            FileLock(str(tmp_path / "s.lock"))
        monkeypatch.setenv("REPRO_STORE_LOCK_TIMEOUT", "7.5")
        assert FileLock(str(tmp_path / "s.lock")).timeout == 7.5


class TestRowSchemaV3:
    """Journal rows end with (fault_model, pruned) since v3; the loader
    pads 9-field v1 rows and 10-field v2 rows back to the full shape."""

    def test_row_fields_shape(self):
        from repro.fi.resilience import JOURNAL_VERSION, ROW_FIELDS

        assert JOURNAL_VERSION == 3
        assert len(ROW_FIELDS) == 11
        assert ROW_FIELDS[-2:] == ("fault_model", "pruned")

    def test_record_from_row_pads_v1_and_v2(self):
        from repro.fi.outcomes import Outcome
        from repro.fi.resilience import record_from_row

        v1 = (3, 17, "ok", "42\n", 7, None, None, None, None)
        v2 = v1 + ("seu",)
        v3 = v2 + (0,)
        for row in (v1, v2, v3):
            outcome, rec = record_from_row(row, "42\n")
            assert outcome is Outcome.BENIGN
            assert rec.fault_model == "seu"

    def test_pruned_row_shapes(self):
        from repro.fi.outcomes import Outcome
        from repro.fi.resilience import ROW_FIELDS, pruned_row, record_from_row

        ir = pruned_row("ir", 3, 9, "out\n", 41, "seu")
        asm = pruned_row("asm", 4, 8, "out\n", 12, "set",
                         asm_role="compute", asm_opcode="ADD_RR", iid=41)
        for row in (ir, asm):
            assert len(row) == len(ROW_FIELDS)
            assert row[-1] == 1
            outcome, rec = record_from_row(row, "out\n")
            assert outcome is Outcome.PRUNE_BENIGN
        assert ir[4] == 41 and ir[5] is None
        assert asm[5] == 12 and asm[6] == "compute" and asm[4] == 41

    def test_pruned_row_classifies_without_golden_match(self):
        """A pruned row short-circuits on the flag, not on the output
        comparison — replay never re-runs the liveness analysis."""
        from repro.fi.outcomes import Outcome
        from repro.fi.resilience import pruned_row, record_from_row

        row = pruned_row("ir", 0, 0, "recorded\n", 1, "seu")
        outcome, _ = record_from_row(row, "recorded\n")
        assert outcome is Outcome.PRUNE_BENIGN

    def test_config_doc_omits_default_prune_switches(self):
        from repro.fi.campaign import CampaignConfig
        from repro.fi.resilience import _config_doc

        plain = _config_doc(CampaignConfig(n_campaigns=5, seed=1))
        assert "prune" not in plain and "stratify" not in plain
        on = _config_doc(CampaignConfig(n_campaigns=5, seed=1,
                                        prune=True, stratify=True))
        assert on["prune"] is True and on["stratify"] is True
