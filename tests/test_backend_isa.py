"""Tests for the ISA's fault-injection site analysis."""

import pytest

from repro.backend.isa import AsmInst, Imm, Label, Mem, Reg, Role


def reg(name):
    return Reg(name)


class TestDestKind:
    def test_mov_to_register_is_gpr_site(self):
        inst = AsmInst("mov", (reg("rax"), Imm(5)))
        assert inst.dest_kind() == "gpr"
        assert inst.is_injectable
        assert inst.dest_reg() == reg("rax")

    def test_mov_to_memory_is_not_a_site(self):
        inst = AsmInst("mov", (Mem(reg("rbp"), -8), reg("rax")))
        assert inst.dest_kind() is None
        assert not inst.is_injectable

    def test_flags_writers(self):
        for op in ("cmp", "test", "ucomisd"):
            inst = AsmInst(op, (reg("rax"), reg("rcx")))
            assert inst.dest_kind() == "flags"
            assert inst.is_injectable

    def test_fp_ops_are_xmm_sites(self):
        for op in ("movsd", "addsd", "subsd", "mulsd", "divsd", "cvtsi2sd"):
            dst = reg("xmm2")
            src = reg("xmm3") if op != "cvtsi2sd" else reg("rax")
            inst = AsmInst(op, (dst, src))
            assert inst.dest_kind() == "xmm", op

    def test_movsd_to_memory_not_a_site(self):
        inst = AsmInst("movsd", (Mem(reg("rbp"), -8), reg("xmm2")))
        assert inst.dest_kind() is None

    def test_control_flow_not_sites(self):
        for op, ops in [
            ("jmp", (Label("x"),)),
            ("jcc", (Label("x"),)),
            ("call", (Label("f"),)),
            ("ret", ()),
            ("push", (reg("rbp"),)),
            ("ud2", ()),
        ]:
            assert not AsmInst(op, ops, cc="e" if op == "jcc" else None).is_injectable, op

    def test_pop_is_a_site(self):
        assert AsmInst("pop", (reg("rbp"),)).is_injectable

    def test_setcc_and_cmov_are_sites(self):
        assert AsmInst("setcc", (reg("rdx"),), cc="l").dest_kind() == "gpr"
        assert AsmInst("cmov", (reg("rax"), reg("rcx")), cc="ne").dest_kind() == "gpr"

    def test_idiv_dest_is_rax(self):
        inst = AsmInst("idiv", (reg("rcx"),))
        assert inst.dest_kind() == "gpr"
        assert inst.dest_reg() == reg("rax")

    def test_arith_sites(self):
        for op in ("add", "sub", "imul", "and", "or", "xor", "shl", "sar",
                   "shr", "lea", "cvttsd2si"):
            operand = Mem(reg("rbp"), -8) if op == "lea" else Imm(1)
            inst = AsmInst(op, (reg("r10"), operand))
            assert inst.dest_kind() == "gpr", op


class TestOperandsAndPrinting:
    def test_reg_classes(self):
        assert not reg("rax").is_xmm
        assert reg("xmm5").is_xmm

    def test_mem_str(self):
        assert str(Mem(reg("rbp"), -8)) == "-0x8(%rbp)"
        assert str(Mem(None, 0x1000)) == "0x1000"
        assert str(Mem(reg("rax"), 0)) == "(%rax)"

    def test_inst_str_includes_cc(self):
        inst = AsmInst("jcc", (Label("x"),), cc="ne")
        assert "jccne" in str(inst) or "jcc" in str(inst)

    def test_byte_mov_printed_distinctly(self):
        inst = AsmInst("mov", (reg("rax"), Mem(reg("rbp"), -8)), size=1)
        assert str(inst).startswith("movb")

    def test_role_vocabulary_distinct(self):
        roles = [
            Role.MAIN, Role.MAIN_COPY, Role.OPERAND_RELOAD,
            Role.RESULT_SPILL, Role.ADDR, Role.STORE_RELOAD,
            Role.STORE_ADDR_RELOAD, Role.BR_COND_RELOAD, Role.BR_TEST,
            Role.CALL_ARG, Role.RET_VAL, Role.FRAME, Role.ARG_SPILL,
            Role.CHECKER, Role.SELECT_TEST, Role.FOLDED_CHECKER_JMP,
        ]
        assert len(set(roles)) == len(roles)
