"""Regression tests for the interval helpers (:mod:`repro.fi.stats`).

An earlier bug let ``composed_interval`` accept ``k > n`` strata, which
produced a negative variance term and journaled CIs wider than [0, 1].
Degenerate inputs must now fail loudly — except ``n == 0``, whose
well-defined vacuous answers (``(0, 1)`` for Wilson, maximum binomial
variance for a composed stratum) are pinned here too.
"""

import math

import pytest

from repro.fi.stats import (
    DEFAULT_Z,
    composed_interval,
    neyman_allocation,
    wilson_interval,
)


# -- wilson_interval ----------------------------------------------------


def test_wilson_basic_shape():
    lo, hi = wilson_interval(10, 100)
    assert 0.0 <= lo < 0.1 < hi <= 1.0
    assert hi - lo < 0.15


def test_wilson_edges_stay_in_unit_interval():
    for k, n in ((0, 50), (50, 50), (1, 1), (0, 1)):
        lo, hi = wilson_interval(k, n)
        assert 0.0 <= lo <= hi <= 1.0


def test_wilson_n_zero_is_vacuous():
    assert wilson_interval(0, 0) == (0.0, 1.0)


@pytest.mark.parametrize("k,n", [(5, 4), (1, 0), (-1, 10), (10, -1)])
def test_wilson_rejects_out_of_range_counts(k, n):
    with pytest.raises(ValueError):
        wilson_interval(k, n)


@pytest.mark.parametrize("k,n", [(float("nan"), 10), (1, float("nan")),
                                 (float("inf"), 10), (1, float("inf"))])
def test_wilson_rejects_non_finite_counts(k, n):
    with pytest.raises(ValueError):
        wilson_interval(k, n)


def test_wilson_narrows_with_n():
    narrow = wilson_interval(10, 1000)
    wide = wilson_interval(1, 100)
    assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])


# -- composed_interval --------------------------------------------------


def test_composed_single_stratum_matches_binomial():
    p, lo, hi = composed_interval([1.0], [20], [200])
    assert p == pytest.approx(0.1)
    half = DEFAULT_Z * math.sqrt(0.1 * 0.9 / 200)
    assert lo == pytest.approx(0.1 - half)
    assert hi == pytest.approx(0.1 + half)


def test_composed_weights_scale_the_estimate():
    p, lo, hi = composed_interval([0.5, 0.5], [0, 100], [100, 100])
    assert p == pytest.approx(0.5)
    assert lo == pytest.approx(0.5) and hi == pytest.approx(0.5)


def test_composed_empty_is_degenerate_zero():
    assert composed_interval([], [], []) == (0.0, 0.0, 0.0)


def test_composed_n_zero_stratum_books_max_variance():
    """An unsampled stratum must widen the interval (p=1/2, maximum
    binomial variance), never claim false certainty."""
    p, lo, hi = composed_interval([0.5, 0.5], [10, 0], [100, 0])
    assert p == pytest.approx(0.5 * 0.1 + 0.5 * 0.5)
    certain = composed_interval([0.5, 0.5], [10, 50], [100, 100])
    assert (hi - lo) > (certain[2] - certain[1])
    half = DEFAULT_Z * math.sqrt(0.25 * 0.1 * 0.9 / 100 + 0.25 * 0.25)
    assert hi - lo == pytest.approx(min(1.0, p + half)
                                    - max(0.0, p - half))


def test_composed_rejects_k_greater_than_n():
    """The original regression: a k > n stratum used to produce a
    negative variance term instead of raising."""
    with pytest.raises(ValueError):
        composed_interval([1.0], [11], [10])
    with pytest.raises(ValueError):
        composed_interval([0.5, 0.5], [5, 9], [10, 8])


@pytest.mark.parametrize("weights", [[-0.1], [float("nan")],
                                     [float("inf")]])
def test_composed_rejects_bad_weights(weights):
    with pytest.raises(ValueError):
        composed_interval(weights, [1], [10])


def test_composed_rejects_length_mismatch():
    with pytest.raises(ValueError):
        composed_interval([1.0], [1, 2], [10, 10])
    with pytest.raises(ValueError):
        composed_interval([0.5, 0.5], [1], [10])


def test_composed_interval_clamped_to_unit():
    p, lo, hi = composed_interval([1.0], [1], [2])
    assert 0.0 <= lo <= p <= hi <= 1.0


# -- neyman_allocation --------------------------------------------------


def test_neyman_sums_to_budget():
    alloc = neyman_allocation([0.5, 0.3, 0.2], [0.3, 0.1, 0.4], 100)
    assert sum(alloc) == 100
    assert all(a >= 0 for a in alloc)


def test_neyman_concentrates_on_variance():
    alloc = neyman_allocation([0.5, 0.5], [0.4, 0.0], 100)
    assert alloc[0] > alloc[1]


def test_neyman_minimum_floor():
    """A zero-variance stratum still gets the pilot floor — its true sd
    may be nonzero even when the pilot saw no events."""
    alloc = neyman_allocation([0.9, 0.1], [0.5, 0.0], 100, minimum=10)
    assert alloc[1] >= 10
    assert sum(alloc) == 100


def test_neyman_budget_below_floor_grows_to_floor():
    alloc = neyman_allocation([0.5, 0.5], [0.1, 0.1], 3, minimum=5)
    assert alloc == [5, 5]


def test_neyman_zero_variance_falls_back_to_weights():
    alloc = neyman_allocation([0.75, 0.25], [0.0, 0.0], 100)
    assert sum(alloc) == 100
    assert alloc[0] == 75 and alloc[1] == 25


def test_neyman_all_zero_spreads_evenly():
    alloc = neyman_allocation([0.0, 0.0], [0.0, 0.0], 10)
    assert alloc == [5, 5]


def test_neyman_empty_strata():
    assert neyman_allocation([], [], 50) == []


def test_neyman_largest_remainder_is_deterministic():
    a = neyman_allocation([1 / 3, 1 / 3, 1 / 3], [0.2, 0.2, 0.2], 10)
    assert a == neyman_allocation([1 / 3, 1 / 3, 1 / 3],
                                  [0.2, 0.2, 0.2], 10)
    assert sum(a) == 10


@pytest.mark.parametrize(
    "kwargs",
    [dict(weights=[0.5], sds=[0.1, 0.2], budget=10),
     dict(weights=[0.5], sds=[0.1], budget=-1),
     dict(weights=[0.5], sds=[0.1], budget=10, minimum=-1),
     dict(weights=[-0.5], sds=[0.1], budget=10),
     dict(weights=[0.5], sds=[float("nan")], budget=10),
     dict(weights=[float("inf")], sds=[0.1], budget=10)])
def test_neyman_rejects_degenerate_inputs(kwargs):
    with pytest.raises(ValueError):
        neyman_allocation(**kwargs)
