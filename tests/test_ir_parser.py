"""Tests for the textual IR parser (printer round-trips)."""

import pytest

from repro.benchsuite.registry import load_source
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import run_ir
from repro.ir.parser import IRParseError, parse_ir
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.protection.duplication import duplicate_module


def roundtrip(module):
    text = print_module(module)
    parsed = parse_ir(text)
    verify_module(parsed)
    return parsed, text


class TestHandWritten:
    def test_minimal_module(self):
        text = """
; module hand
@g = global i64 41

define void @main() {
entry:
  %t1 = load i64, i64* @g
  %t2 = add i64 %t1, i64 1
  call void @print_i64(i64 %t2)
  ret void
}
"""
        module = parse_ir(text)
        verify_module(module)
        assert run_ir(module).output == "42\n"

    def test_arrays_and_geps(self):
        text = """
@data = constant [3 x i64] [10, 20, 30]

define void @main() {
entry:
  %t1 = gep [3 x i64]* @data, i64 2
  %t2 = load i64, i64* %t1
  call void @print_i64(i64 %t2)
  ret void
}
"""
        assert run_ir(parse_ir(text)).output == "30\n"

    def test_control_flow(self):
        text = """
define void @main() {
entry:
  %t1 = icmp slt i64 3, 5
  condbr i1 %t1, label %yes, label %no
yes:
  call void @print_i64(i64 1)
  ret void
no:
  call void @print_i64(i64 0)
  ret void
}
"""
        assert run_ir(parse_ir(text)).output == "1\n"

    def test_floats_and_casts(self):
        text = """
define void @main() {
entry:
  %t1 = sitofp i64 7 to f64
  %t2 = fdiv f64 %t1, f64 2.0
  call void @print_f64(f64 %t2)
  %t3 = fptosi f64 %t2 to i64
  call void @print_i64(i64 %t3)
  ret void
}
"""
        assert run_ir(parse_ir(text)).output == "3.5\n3\n"

    def test_functions_and_calls(self):
        text = """
define i64 @double(i64 %x) {
entry:
  %t1 = add i64 %x, i64 %x
  ret i64 %t1
}

define void @main() {
entry:
  %t2 = call i64 @double(i64 21)
  call void @print_i64(i64 %t2)
  ret void
}
"""
        assert run_ir(parse_ir(text)).output == "42\n"

    def test_volatile_global_roundtrip(self):
        text = """
@guard = volatile global i64 1

define void @main() {
entry:
  %t1 = load volatile i64, i64* @guard
  call void @print_i64(i64 %t1)
  ret void
}
"""
        module = parse_ir(text)
        assert module.globals["guard"].volatile
        inst = next(i for i in module.instructions() if i.opcode == "load")
        assert inst.volatile

    def test_errors(self):
        with pytest.raises(IRParseError):
            parse_ir("nonsense at top level")
        with pytest.raises(IRParseError):
            parse_ir("define void @f() {\nentry:\n  %t1 = bogus 1\n}")
        with pytest.raises(IRParseError):
            parse_ir(
                "define void @f() {\nentry:\n  %t1 = add i64 %t9, i64 1\n}"
            )


class TestRoundTrips:
    @pytest.mark.parametrize("bench", ["crc32", "pathfinder", "knn", "ep"])
    def test_benchmark_roundtrip_semantics(self, bench):
        module = compile_source(load_source(bench, "tiny"), bench)
        golden = run_ir(module)
        parsed, text = roundtrip(module)
        res = run_ir(parsed)
        assert res.output == golden.output

    def test_roundtrip_is_fixpoint(self):
        module = compile_source(load_source("crc32", "tiny"))
        parsed, text1 = roundtrip(module)
        text2 = print_module(parsed)
        assert text1 == text2

    def test_protected_module_roundtrip(self):
        module = compile_source(load_source("pathfinder", "tiny"))
        duplicate_module(module)
        golden = run_ir(module)
        parsed, _ = roundtrip(module)
        assert run_ir(parsed).output == golden.output
        # protection metadata survives
        shadows = [i for i in parsed.instructions() if i.is_shadow]
        checkers = [i for i in parsed.instructions() if i.is_checker]
        assert shadows and checkers
