"""Shared helpers importable from test modules."""

from repro.backend.lower import lower_module
from repro.frontend.codegen import compile_source
from repro.interp.layout import GlobalLayout
from repro.machine.machine import compile_program


def compile_and_build(source: str, name: str = "t"):
    """(module, layout, asm_program, compiled) for a MiniC source."""
    module = compile_source(source, name)
    layout = GlobalLayout(module)
    asm = lower_module(module, layout)
    compiled = compile_program(asm.flatten())
    return module, layout, asm, compiled
