"""Tests for structural IR verification."""

import pytest

from repro.errors import VerifierError
from repro.ir import types as T
from repro.ir.builder import IRBuilder
from repro.ir.instructions import BinOp, Br
from repro.ir.module import Module
from repro.ir.types import function_type
from repro.ir.values import const_int
from repro.ir.verifier import compute_dominators, verify_module


def fresh():
    m = Module("v")
    fn = m.add_function("main", function_type(T.VOID, []))
    b = IRBuilder(fn)
    b.set_block(b.new_block("entry"))
    return m, fn, b


class TestStructure:
    def test_valid_module_passes(self):
        m, fn, b = fresh()
        b.ret()
        verify_module(m)

    def test_missing_terminator(self):
        m, fn, b = fresh()
        b.add(b.i64(1), b.i64(2))
        with pytest.raises(VerifierError, match="terminator"):
            verify_module(m)

    def test_empty_block(self):
        m, fn, b = fresh()
        b.ret()
        fn.new_block("empty")
        with pytest.raises(VerifierError, match="empty"):
            verify_module(m)

    def test_foreign_branch_target(self):
        m, fn, b = fresh()
        other_m = Module("other")
        other_fn = other_m.add_function("f", function_type(T.VOID, []))
        foreign = other_fn.new_block("x")
        br = Br(foreign)
        m.assign_iid(br)
        b.block.append(br)
        with pytest.raises(VerifierError, match="foreign"):
            verify_module(m)

    def test_entry_with_predecessor(self):
        m, fn, b = fresh()
        b.br(fn.entry)
        with pytest.raises(VerifierError, match="entry"):
            verify_module(m)


class TestIds:
    def test_missing_iid(self):
        m, fn, b = fresh()
        b.ret()
        inst = BinOp("add", const_int(1), const_int(2))
        fn.entry.instructions.insert(0, inst)  # bypass builder: no iid
        with pytest.raises(VerifierError, match="iid"):
            verify_module(m)

    def test_duplicate_iid(self):
        m, fn, b = fresh()
        x = b.add(b.i64(1), b.i64(2))
        y = b.add(b.i64(3), b.i64(4))
        y.iid = x.iid
        b.ret()
        with pytest.raises(VerifierError, match="duplicate iid"):
            verify_module(m)


class TestDominance:
    def test_use_before_def_same_block(self):
        m, fn, b = fresh()
        x = b.add(b.i64(1), b.i64(2))
        y = b.add(x, b.i64(3))
        b.ret()
        # swap x and y: y now uses x before its definition
        fn.entry.instructions[0], fn.entry.instructions[1] = y, x
        with pytest.raises(VerifierError, match="before definition"):
            verify_module(m)

    def test_non_dominating_use(self):
        m, fn, b = fresh()
        then = b.new_block("then")
        els = b.new_block("els")
        done = b.new_block("done")
        cond = b.icmp("eq", b.i64(1), b.i64(1))
        b.condbr(cond, then, els)
        b.set_block(then)
        x = b.add(b.i64(1), b.i64(2))
        b.br(done)
        b.set_block(els)
        b.br(done)
        b.set_block(done)
        b.add(x, b.i64(1))  # x does not dominate done
        b.ret()
        with pytest.raises(VerifierError, match="dominate"):
            verify_module(m)

    def test_dominating_use_across_blocks_ok(self):
        m, fn, b = fresh()
        nxt = b.new_block("next")
        x = b.add(b.i64(1), b.i64(2))
        b.br(nxt)
        b.set_block(nxt)
        b.add(x, b.i64(1))
        b.ret()
        verify_module(m)

    def test_compute_dominators_diamond(self):
        m, fn, b = fresh()
        entry = fn.entry
        then = b.new_block("then")
        els = b.new_block("els")
        done = b.new_block("done")
        cond = b.icmp("eq", b.i64(1), b.i64(1))
        b.condbr(cond, then, els)
        for blk in (then, els):
            b.set_block(blk)
            b.br(done)
        b.set_block(done)
        b.ret()
        dom = compute_dominators(fn)
        assert dom[done] == {entry, done}
        assert dom[then] == {entry, then}


class TestCalls:
    def test_unknown_intrinsic(self):
        m, fn, b = fresh()
        b.call("not_an_intrinsic", [], ret_type=T.VOID)
        b.ret()
        with pytest.raises(VerifierError, match="intrinsic"):
            verify_module(m)

    def test_known_intrinsic_ok(self):
        m, fn, b = fresh()
        b.call("print_i64", [b.i64(1)], ret_type=T.VOID)
        b.ret()
        verify_module(m)
