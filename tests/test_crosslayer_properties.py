"""Property-based cross-layer equivalence testing.

Random (always-terminating) MiniC programs come from the shared
seed-deterministic generator in :mod:`repro.testgen.minic` via the
:mod:`repro.testgen.strategies` wrappers — the same grammar the
differential oracle and the mutation harness exercise, so the property
suite can never drift from the validation tooling.  The load-bearing
invariant: a program produces bit-identical output at the IR layer and
the assembly layer, before and after protection.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.execresult import RunStatus
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import run_ir
from repro.interp.layout import GlobalLayout
from repro.backend.lower import lower_module
from repro.machine.machine import compile_program, run_asm
from repro.protection.duplication import duplicate_module
from repro.protection.flowery import apply_flowery
from repro.testgen.strategies import minic_sources

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@_SETTINGS
@given(minic_sources())
def test_property_cross_layer_equivalence(src):
    module = compile_source(src)
    layout = GlobalLayout(module)
    compiled = compile_program(lower_module(module, layout).flatten())
    ir = run_ir(module, layout=layout, max_steps=2_000_000)
    asm = run_asm(compiled, layout, max_steps=8_000_000)
    assert ir.status is RunStatus.OK
    assert asm.status is RunStatus.OK
    assert asm.output == ir.output


@_SETTINGS
@given(minic_sources())
def test_property_protection_preserves_semantics(src):
    golden = run_ir(compile_source(src), max_steps=2_000_000)
    module = compile_source(src)
    info = duplicate_module(module, store_mode="eager")
    apply_flowery(module, info)
    layout = GlobalLayout(module)
    compiled = compile_program(lower_module(module, layout).flatten())
    ir = run_ir(module, layout=layout, max_steps=8_000_000)
    asm = run_asm(compiled, layout, max_steps=32_000_000)
    assert ir.output == golden.output
    assert asm.output == golden.output


@_SETTINGS
@given(minic_sources())
def test_property_injection_never_crashes_host(src):
    """Whatever a single bit flip does to the simulated program, the
    host-side harness must classify it into exactly one outcome."""
    module = compile_source(src)
    golden = run_ir(module, max_steps=2_000_000)
    import numpy as np

    rng = np.random.default_rng(0)
    n = min(10, golden.dyn_injectable)
    for idx in rng.integers(0, golden.dyn_injectable, size=n).tolist():
        res = run_ir(module, inject_index=idx,
                     inject_bit=int(rng.integers(0, 64)),
                     max_steps=golden.dyn_total * 4 + 1000)
        assert res.status in (RunStatus.OK, RunStatus.TRAP,
                              RunStatus.DETECTED)
