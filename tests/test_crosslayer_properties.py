"""Property-based cross-layer equivalence testing.

Generates random (but always-terminating) MiniC programs and checks the
load-bearing invariant of the whole reproduction: a program produces
bit-identical output at the IR layer and the assembly layer, before and
after protection.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.execresult import RunStatus
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import run_ir
from repro.interp.layout import GlobalLayout
from repro.backend.lower import lower_module
from repro.machine.machine import compile_program, run_asm
from repro.protection.duplication import duplicate_module
from repro.protection.flowery import apply_flowery

# -- random program generation -------------------------------------------

_VARS = ["v0", "v1", "v2"]

_int_leaf = st.one_of(
    st.integers(-50, 50).map(str),
    st.sampled_from(_VARS),
)


def _binop(children):
    ops = st.sampled_from(["+", "-", "*", "&", "|", "^"])
    return st.tuples(ops, children, children).map(
        lambda t: f"({t[1]} {t[0]} {t[2]})"
    )


def _cmp(children):
    ops = st.sampled_from(["<", "<=", ">", ">=", "==", "!="])
    return st.tuples(ops, children, children).map(
        lambda t: f"({t[1]} {t[0]} {t[2]})"
    )


int_exprs = st.recursive(_int_leaf, lambda ch: _binop(ch) | _cmp(ch),
                         max_leaves=8)


@st.composite
def statements(draw, depth=0):
    kind = draw(st.sampled_from(
        ["assign", "assign", "print", "if"] + (["loop"] if depth < 1 else [])
    ))
    if kind == "assign":
        var = draw(st.sampled_from(_VARS))
        expr = draw(int_exprs)
        return f"{var} = {expr};"
    if kind == "print":
        return f"print({draw(int_exprs)});"
    if kind == "if":
        cond = draw(int_exprs)
        body = draw(statements(depth=depth + 1))
        alt = draw(statements(depth=depth + 1))
        return f"if ({cond}) {{ {body} }} else {{ {alt} }}"
    # bounded loop
    n = draw(st.integers(1, 5))
    body = draw(statements(depth=depth + 1))
    var = draw(st.sampled_from(_VARS))
    return (f"for (int it{depth} = 0; it{depth} < {n}; it{depth}++) "
            f"{{ {body} {var} = {var} + it{depth}; }}")


@st.composite
def programs(draw):
    n = draw(st.integers(1, 5))
    body = " ".join(draw(statements()) for _ in range(n))
    decls = " ".join(f"int {v} = {draw(st.integers(-9, 9))};" for v in _VARS)
    tail = " ".join(f"print({v});" for v in _VARS)
    return f"int main() {{ {decls} {body} {tail} return 0; }}"


_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@_SETTINGS
@given(programs())
def test_property_cross_layer_equivalence(src):
    module = compile_source(src)
    layout = GlobalLayout(module)
    compiled = compile_program(lower_module(module, layout).flatten())
    ir = run_ir(module, layout=layout, max_steps=2_000_000)
    asm = run_asm(compiled, layout, max_steps=8_000_000)
    assert ir.status is RunStatus.OK
    assert asm.status is RunStatus.OK
    assert asm.output == ir.output


@_SETTINGS
@given(programs())
def test_property_protection_preserves_semantics(src):
    golden = run_ir(compile_source(src), max_steps=2_000_000)
    module = compile_source(src)
    info = duplicate_module(module, store_mode="eager")
    apply_flowery(module, info)
    layout = GlobalLayout(module)
    compiled = compile_program(lower_module(module, layout).flatten())
    ir = run_ir(module, layout=layout, max_steps=8_000_000)
    asm = run_asm(compiled, layout, max_steps=32_000_000)
    assert ir.output == golden.output
    assert asm.output == golden.output


@_SETTINGS
@given(programs())
def test_property_injection_never_crashes_host(src):
    """Whatever a single bit flip does to the simulated program, the
    host-side harness must classify it into exactly one outcome."""
    module = compile_source(src)
    golden = run_ir(module)
    import numpy as np

    rng = np.random.default_rng(0)
    n = min(10, golden.dyn_injectable)
    for idx in rng.integers(0, golden.dyn_injectable, size=n).tolist():
        res = run_ir(module, inject_index=idx,
                     inject_bit=int(rng.integers(0, 64)),
                     max_steps=golden.dyn_total * 4 + 1000)
        assert res.status in (RunStatus.OK, RunStatus.TRAP,
                              RunStatus.DETECTED)
