"""Multi-process shared-store stress (DESIGN §16, the concurrency
oracle): N concurrent campaign processes against one store — with and
without SIGKILLs and corrupted rows — must produce composed counters
bit-identical to a serial storeless run, dedupe work through claims,
and leave a store that passes verification (after compaction drops
quarantined lines)."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from collections import Counter

import pytest

from repro.fi.campaign import CampaignConfig
from repro.fi.compose import (
    SectionProfileStore,
    compact_store,
    run_incremental_campaign,
    verify_store,
)
from repro.pipeline import build_from_source

SRC = """
const int N = 5;

int scale(int x) {
    int acc = x;
    for (int i = 0; i < 3; i++) {
        acc = acc * 2 + i;
    }
    return acc;
}

int main() {
    int total = 0;
    for (int i = 0; i < N; i++) {
        total = total + scale(i);
    }
    print(total);
    return 0;
}
"""

N = 40
SEED = 9

WORKER = f'''
import json, os, signal, sys

from repro.fi.campaign import CampaignConfig
from repro.fi.compose import SectionProfileStore, run_incremental_campaign
from repro.pipeline import build_from_source

SRC = {SRC!r}

store_path = sys.argv[1]
kill_after = int(sys.argv[2]) if len(sys.argv) > 2 else 0

built = build_from_source(SRC, name="stress")
cfg = CampaignConfig(n_campaigns={N}, seed={SEED})
store = SectionProfileStore(store_path)
if kill_after:
    orig = store.record_row
    state = {{"rows": 0}}
    def record_row(key, n, i, row):
        orig(key, n, i, row)
        state["rows"] += 1
        if state["rows"] >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
    store.record_row = record_row
res = run_incremental_campaign(built, "ir", cfg, store)
store.close()
print(json.dumps({{
    "counts": {{o.value: c for o, c in res.counts.items() if c}},
    "simulated": res.simulated,
    "replayed": res.replayed,
    "n_total": res.n_total,
}}))
'''


def _spawn(worker_path, store_path, kill_after=0):
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = (os.path.join(root, "src") + os.pathsep +
                         env.get("PYTHONPATH", ""))
    return subprocess.Popen(
        [sys.executable, worker_path, store_path, str(kill_after)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )


def _reference():
    built = build_from_source(SRC, name="stress")
    res = run_incremental_campaign(
        built, "ir", CampaignConfig(n_campaigns=N, seed=SEED), None)
    return res


def _row_events(path):
    rows = []
    for line in open(path):
        if line.startswith('{"ev": "row"') and line.endswith("\n"):
            doc = json.loads(line)
            rows.append(((doc["k"], doc["n"], doc["i"]), tuple(doc["row"])))
    return rows


@pytest.fixture(scope="module")
def worker_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("stress") / "worker.py"
    path.write_text(WORKER)
    return str(path)


@pytest.mark.slow
class TestConcurrentCampaigns:
    def test_three_processes_dedupe_and_bit_match_serial(
            self, worker_path, tmp_path):
        store_path = str(tmp_path / "shared.jsonl")
        procs = [_spawn(worker_path, store_path) for _ in range(3)]
        outs = []
        for p in procs:
            out, err = p.communicate(timeout=300)
            assert p.returncode == 0, err
            outs.append(json.loads(out))

        ref = _reference()
        ref_counts = {o.value: c for o, c in ref.counts.items() if c}
        for doc in outs:
            assert doc["counts"] == ref_counts
            assert doc["n_total"] == ref.n_total

        # claims deduped the work: every sample simulated exactly once
        # across the fleet, nothing lost, nothing duplicated
        assert sum(d["simulated"] for d in outs) == ref.n_total
        events = _row_events(store_path)
        by_id = Counter(k for k, _ in events)
        assert all(c == 1 for c in by_id.values()), by_id.most_common(3)
        assert len(by_id) == ref.n_total

        assert verify_store(store_path)["ok"]

        # a fourth, serial run is a pure warm hit
        built = build_from_source(SRC, name="stress")
        with SectionProfileStore(store_path) as store:
            warm = run_incremental_campaign(
                built, "ir", CampaignConfig(n_campaigns=N, seed=SEED),
                store)
        assert warm.simulated == 0
        assert {o.value: c for o, c in warm.counts.items() if c} == \
            ref_counts

    def test_sigkill_and_corruption_survived(self, worker_path, tmp_path):
        """One campaign SIGKILLed mid-run (rows journaled, claims left
        behind) plus an artificially corrupted row: concurrent
        survivors take over the dead claims, the corrupt line is
        quarantined, and the composed counters still bit-match the
        serial reference."""
        store_path = str(tmp_path / "shared.jsonl")

        victim = _spawn(worker_path, store_path, kill_after=5)
        # give the victim a head start so its claims are on disk
        time.sleep(0.2)
        survivors = [_spawn(worker_path, store_path) for _ in range(2)]
        victim.communicate(timeout=300)
        assert victim.returncode == -signal.SIGKILL

        outs = []
        for p in survivors:
            out, err = p.communicate(timeout=300)
            assert p.returncode == 0, err
            outs.append(json.loads(out))

        ref = _reference()
        ref_counts = {o.value: c for o, c in ref.counts.items() if c}
        for doc in outs:
            assert doc["counts"] == ref_counts

        # corrupt one complete row line in place, then resume on top
        lines = open(store_path).read().splitlines(keepends=True)
        idx = next(i for i, ln in enumerate(lines)
                   if ln.startswith('{"ev": "row"'))
        lines[idx] = lines[idx].replace('"row"', '"rXw"', 1)
        with open(store_path, "w") as fh:
            fh.writelines(lines)

        built = build_from_source(SRC, name="stress")
        with SectionProfileStore(store_path) as store:
            assert store.scan_corrupt == 1       # quarantined, not fatal
            res = run_incremental_campaign(
                built, "ir", CampaignConfig(n_campaigns=N, seed=SEED),
                store)
        assert {o.value: c for o, c in res.counts.items() if c} == \
            ref_counts

        # compaction drops the quarantined line; the store then
        # verifies clean and still serves a pure warm hit
        compact_store(store_path)
        assert verify_store(store_path)["ok"]
        with SectionProfileStore(store_path) as store:
            warm = run_incremental_campaign(
                built, "ir", CampaignConfig(n_campaigns=N, seed=SEED),
                store)
        assert warm.simulated == 0
        assert {o.value: c for o, c in warm.counts.items() if c} == \
            ref_counts
