"""Tests for frame layout and the register cache."""

import pytest

from repro.backend.frame import FrameLayout
from repro.backend.regcache import RegCache
from repro.backend.isa import Reg, SCRATCH_GPRS, SCRATCH_XMMS
from repro.errors import LoweringError
from repro.frontend.codegen import compile_source


def layout_of(src: str, fn: str = "main") -> FrameLayout:
    module = compile_source(src)
    return FrameLayout(module.function(fn))


class TestFrameLayout:
    def test_every_result_has_home_slot(self):
        src = "int main() { int x = 1; print(x + 2); return 0; }"
        module = compile_source(src)
        fl = FrameLayout(module.function("main"))
        for inst in module.function("main").instructions():
            if inst.opcode == "alloca":
                assert inst.iid in fl.alloca_offsets
            elif inst.has_result and not inst.type.is_void:
                assert fl.has_home(inst.iid)

    def test_offsets_negative_and_disjoint(self):
        fl = layout_of(
            "int main() { int a[4]; int x = 1; float f = 2.0; "
            "print(x); return 0; }"
        )
        spans = []
        for off in fl.alloca_offsets.values():
            assert off < 0
        all_offsets = (
            list(fl.alloca_offsets.values())
            + list(fl.home_offsets.values())
            + list(fl.arg_offsets.values())
        )
        assert len(set(all_offsets)) == len(all_offsets)

    def test_frame_size_16_aligned(self):
        fl = layout_of("int main() { int x = 3; print(x); return 0; }")
        assert fl.frame_size % 16 == 0
        assert fl.frame_size > 0

    def test_array_alloca_reserves_full_size(self):
        src = "int main() { int a[100]; a[0] = 1; print(a[0]); return 0; }"
        fl = layout_of(src)
        assert fl.frame_size >= 800

    def test_arg_slots(self):
        src = ("int f(int a, float b) { return a + int(b); } "
               "int main() { print(f(1, 2.0)); return 0; }")
        module = compile_source(src)
        fl = FrameLayout(module.function("f"))
        assert set(fl.arg_offsets.keys()) == {0, 1}

    def test_missing_home_slot_raises(self):
        fl = layout_of("int main() { return 0; }")
        with pytest.raises(LoweringError):
            fl.home_mem(99999)


class TestRegCache:
    def test_lookup_miss(self):
        assert RegCache().lookup(1) is None

    def test_bind_and_lookup(self):
        c = RegCache()
        r = c.alloc()
        c.bind(1, r)
        assert c.lookup(1) == r

    def test_alloc_prefers_free_registers(self):
        c = RegCache()
        seen = set()
        for i in range(len(SCRATCH_GPRS)):
            r = c.alloc()
            c.bind(i, r)
            seen.add(r.name)
        assert seen == set(SCRATCH_GPRS)

    def test_lru_eviction(self):
        c = RegCache()
        for i in range(len(SCRATCH_GPRS)):
            c.bind(i, c.alloc())
        # pool is full; next alloc evicts the least recently used
        c.lookup(0)  # refresh id 0
        r = c.alloc()
        c.bind(99, r)
        assert c.lookup(0) is not None  # survived
        assert c.lookup(99) is not None

    def test_exclude_respected(self):
        c = RegCache()
        exclude = set(SCRATCH_GPRS[:-1])
        r = c.alloc(exclude=exclude)
        assert r.name == SCRATCH_GPRS[-1]

    def test_exhaustion_raises(self):
        from repro.errors import LoweringError

        c = RegCache()
        with pytest.raises(LoweringError):
            c.alloc(exclude=set(SCRATCH_GPRS))

    def test_fp_pool_separate(self):
        c = RegCache()
        r = c.alloc(fp=True)
        assert r.name in SCRATCH_XMMS

    def test_rebinding_register_evicts_old_value(self):
        c = RegCache()
        r = c.alloc()
        c.bind(1, r)
        c.bind(2, r)
        assert c.lookup(1) is None
        assert c.lookup(2) == r

    def test_clear(self):
        c = RegCache()
        c.bind(1, c.alloc())
        c.clear()
        assert c.lookup(1) is None
