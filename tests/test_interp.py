"""Tests for the IR interpreter: semantics, traps, fault injection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.execresult import RunStatus
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import IRInterpreter, run_ir
from repro.interp.layout import GlobalLayout
from repro.ir import types as T
from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import function_type


def run_minic(src: str, **kwargs):
    return run_ir(compile_source(src), **kwargs)


def expr_program(expr: str) -> str:
    return f"int main() {{ print({expr}); return 0; }}"


class TestArithmeticSemantics:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1 + 2", "3"),
            ("7 - 10", "-3"),
            ("6 * 7", "42"),
            ("17 / 5", "3"),
            ("-17 / 5", "-3"),        # C truncation toward zero
            ("17 % 5", "2"),
            ("-17 % 5", "-2"),        # C remainder sign
            ("1 << 10", "1024"),
            ("-32 >> 2", "-8"),       # arithmetic shift
            ("12 & 10", "8"),
            ("12 | 10", "14"),
            ("12 ^ 10", "6"),
            ("~5", "-6"),
            ("-(3 + 4)", "-7"),
            ("!0", "1"),
            ("!7", "0"),
            ("3 < 5", "1"),
            ("5 <= 4", "0"),
            ("4 == 4", "1"),
            ("4 != 4", "0"),
            ("1 && 0", "0"),
            ("1 && 2", "1"),
            ("0 || 0", "0"),
            ("0 || 9", "1"),
        ],
    )
    def test_int_expressions(self, expr, expected):
        assert run_minic(expr_program(expr)).output == expected + "\n"

    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1.5 + 2.25", "3.75"),
            ("10.0 / 4.0", "2.5"),
            ("2.0 * -3.5", "-7"),
            ("float(7) / 2.0", "3.5"),
            ("int(3.99)", "3"),
            ("int(-3.99)", "-3"),
            ("1 + 0.5", "1.5"),       # int promotes to float
            ("3.0 < 4.0", "1"),
        ],
    )
    def test_float_expressions(self, expr, expected):
        assert run_minic(expr_program(expr)).output == expected + "\n"

    def test_division_by_zero_traps(self):
        res = run_minic("int main() { int z = 0; print(1 / z); return 0; }")
        assert res.status is RunStatus.TRAP
        assert res.trap_kind == "div-by-zero"

    def test_float_division_by_zero_is_inf(self):
        res = run_minic("int main() { float z = 0.0; print(1.0 / z); return 0; }")
        assert res.status is RunStatus.OK
        assert res.output == "inf\n"

    def test_shift_masking(self):
        # shift counts wrap mod 64, matching x86
        assert run_minic(expr_program("1 << 64")).output == "1\n"

    def test_overflow_wraps(self):
        src = """
int main() {
    int big = 9223372036854775807;
    print(big + 1);
    return 0;
}
"""
        assert run_minic(src).output == "-9223372036854775808\n"


class TestControlFlowAndMemory:
    def test_global_arrays_persist(self):
        src = """
int acc[4];
int main() {
    for (int i = 0; i < 4; i++) { acc[i] = i * i; }
    print(acc[0] + acc[1] + acc[2] + acc[3]);
    return 0;
}
"""
        assert run_minic(src).output == "14\n"

    def test_local_array(self):
        src = """
int main() {
    int a[3] = {10, 20, 30};
    a[1] += 5;
    print(a[0] + a[1] + a[2]);
    return 0;
}
"""
        assert run_minic(src).output == "65\n"

    def test_out_of_bounds_global_traps_or_corrupts(self):
        # writing far out of bounds hits unmapped memory
        src = """
int a[2];
int main() {
    int i = -100000000;
    a[i] = 1;
    return 0;
}
"""
        res = run_minic(src)
        assert res.status is RunStatus.TRAP
        assert res.trap_kind == "segfault"

    def test_deep_recursion_overflows(self):
        src = """
int down(int n) { return down(n + 1); }
int main() { print(down(0)); return 0; }
"""
        res = run_minic(src)
        assert res.status is RunStatus.TRAP
        assert res.trap_kind in ("stack-overflow", "step-budget")

    def test_timeout(self):
        src = "int main() { while (1) { } return 0; }"
        res = run_minic(src, max_steps=1000)
        assert res.status is RunStatus.TRAP
        assert res.trap_kind == "step-budget"

    def test_break_continue(self):
        src = """
int main() {
    int s = 0;
    for (int i = 0; i < 10; i++) {
        if (i % 2 == 0) { continue; }
        if (i > 6) { break; }
        s += i;
    }
    print(s);
    return 0;
}
"""
        assert run_minic(src).output == "9\n"  # 1+3+5


class TestIntrinsics:
    def test_math_intrinsics(self):
        src = """
int main() {
    print(sqrt(16.0));
    print(fabs(-2.5));
    print(pow(2.0, 10.0));
    print(floor(3.7));
    return 0;
}
"""
        assert run_minic(src).output == "4\n2.5\n1024\n3\n"

    def test_domain_error_yields_nan(self):
        assert run_minic(expr_program("sqrt(-1.0)")).output == "nan\n"

    def test_print_char_and_strings(self):
        src = 'int main() { prints("hi"); printc(33); return 0; }'
        assert run_minic(src).output == "hi!"


class TestCounting:
    def test_dynamic_counts_deterministic(self, sink_module):
        a = run_ir(sink_module)
        b = run_ir(sink_module)
        assert a.dyn_total == b.dyn_total
        assert a.dyn_injectable == b.dyn_injectable
        assert 0 < a.dyn_injectable < a.dyn_total

    def test_profile_counts_sum_to_total(self, sink_module):
        res = run_ir(sink_module, profile=True)
        assert sum(res.per_inst_counts.values()) == res.dyn_total

    def test_stores_and_branches_not_injectable(self):
        src = """
int g = 0;
int main() {
    g = 1;
    if (g > 0) { g = 2; }
    return 0;
}
"""
        module = compile_source(src)
        res = run_ir(module, profile=True)
        injectable_sites = sum(
            res.per_inst_counts.get(i.iid, 0)
            for i in module.instructions()
            if i.is_ir_injection_site
        )
        assert injectable_sites == res.dyn_injectable


class TestInjection:
    def test_out_of_range_index_is_noop(self, sink_module):
        golden = run_ir(sink_module)
        res = run_ir(sink_module, inject_index=golden.dyn_injectable + 100)
        assert not res.injected
        assert res.output == golden.output

    def test_injection_flags_and_attribution(self, sink_module):
        res = run_ir(sink_module, inject_index=0, inject_bit=3)
        assert res.injected
        assert res.injected_iid is not None

    def test_injection_changes_behaviour_somewhere(self, sink_module):
        golden = run_ir(sink_module)
        changed = 0
        for i in range(0, min(60, golden.dyn_injectable)):
            r = run_ir(sink_module, inject_index=i, inject_bit=62,
                       max_steps=golden.dyn_total * 4)
            if r.status is not RunStatus.OK or r.output != golden.output:
                changed += 1
        assert changed > 0

    def test_same_injection_is_deterministic(self, sink_module):
        a = run_ir(sink_module, inject_index=17, inject_bit=5)
        b = run_ir(sink_module, inject_index=17, inject_bit=5)
        assert a.status == b.status and a.output == b.output
        assert a.injected_iid == b.injected_iid

    def test_i1_flip_stays_boolean_ish(self):
        # a fault in an icmp result flips the branch decision
        src = """
int main() {
    int x = 5;
    if (x < 10) { print(1); } else { print(2); }
    return 0;
}
"""
        module = compile_source(src)
        golden = run_ir(module)
        # find the icmp's injectable position: scan all and look for the
        # flipped-branch output
        flipped = False
        for i in range(golden.dyn_injectable):
            r = run_ir(module, inject_index=i, inject_bit=0,
                       max_steps=10_000)
            if r.status is RunStatus.OK and r.output == "2\n":
                flipped = True
                break
        assert flipped


class TestArgsAndReturns:
    def test_entry_args(self):
        m = Module("t")
        fn = m.add_function("addmul", function_type(T.I64, [T.I64, T.I64]))
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        s = b.add(fn.args[0], fn.args[1])
        b.ret(b.mul(s, s))
        res = run_ir(m, entry="addmul", args=(3, 4))
        assert res.return_value == 49

    def test_wrong_arity(self):
        m = Module("t")
        fn = m.add_function("f", function_type(T.I64, [T.I64]))
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.ret(fn.args[0])
        from repro.errors import IRError

        with pytest.raises(IRError):
            run_ir(m, entry="f", args=())


@settings(max_examples=30, deadline=None)
@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_property_add_matches_python(a, b):
    src = f"int main() {{ print({a} + {b}); return 0; }}"
    assert run_minic(src).output.strip() == str(a + b)


@settings(max_examples=30, deadline=None)
@given(st.integers(-100, 100), st.integers(1, 50))
def test_property_divmod_c_semantics(a, b):
    src = f"int main() {{ print({a} / {b}); print({a} % {b}); return 0; }}"
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    r = a - q * b
    assert run_minic(src).output == f"{q}\n{r}\n"
