"""Tests for MiniC semantic analysis."""

import pytest

from repro.errors import SemanticError
from repro.frontend.parser import parse_program
from repro.frontend.sema import analyze


def check(src: str):
    return analyze(parse_program(src))


def check_main(body: str):
    return check(f"int main() {{ {body} return 0; }}")


class TestPrograms:
    def test_main_required(self):
        with pytest.raises(SemanticError, match="main"):
            check("int f() { return 0; }")

    def test_main_without_params(self):
        with pytest.raises(SemanticError, match="main"):
            check("int main(int x) { return 0; }")

    def test_signatures_collected(self):
        sigs = check("""
float avg(int a[], int n) { return 0.0; }
int main() { return 0; }
""")
        assert sigs["avg"].return_type == "float"
        assert sigs["avg"].params == [("int", True), ("int", False)]


class TestDeclarations:
    def test_duplicate_global(self):
        with pytest.raises(SemanticError, match="redeclaration"):
            check("int x; int x; int main() { return 0; }")

    def test_duplicate_local_same_scope(self):
        with pytest.raises(SemanticError, match="redeclaration"):
            check_main("int x; int x;")

    def test_shadowing_in_inner_scope_ok(self):
        check_main("int x = 1; { int x = 2; print(x); } print(x);")

    def test_duplicate_param(self):
        with pytest.raises(SemanticError, match="duplicate"):
            check("int f(int a, int a) { return a; } int main() { return 0; }")

    def test_builtin_shadowing_rejected(self):
        with pytest.raises(SemanticError, match="builtin"):
            check("float sqrt(float x) { return x; } int main() { return 0; }")

    def test_bad_array_sizes(self):
        with pytest.raises(SemanticError):
            check("int a[-3]; int main() { return 0; }")
        with pytest.raises(SemanticError, match="too many"):
            check("int a[2] = {1, 2, 3}; int main() { return 0; }")


class TestNameResolution:
    def test_undeclared_identifier(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check_main("print(nope);")

    def test_undeclared_function(self):
        with pytest.raises(SemanticError, match="undeclared function"):
            check_main("print(mystery(1));")

    def test_for_scope_is_local(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check_main("for (int i = 0; i < 3; i++) { } print(i);")


class TestTypeRules:
    def test_int_only_operators(self):
        for op in ("%", "<<", ">>", "&", "|", "^", "&&", "||"):
            with pytest.raises(SemanticError):
                check_main(f"float f = 1.0; print(f {op} 2);")

    def test_mixed_arith_promotes(self):
        check_main("print(1 + 2.0); print(2.0 * 3);")

    def test_array_not_a_value(self):
        with pytest.raises(SemanticError):
            check_main("int a[2]; print(a);")

    def test_array_not_assignable(self):
        with pytest.raises(SemanticError):
            check_main("int a[2]; int b[2]; a = b;")

    def test_index_non_array(self):
        with pytest.raises(SemanticError, match="non-array"):
            check_main("int x = 1; print(x[0]);")

    def test_float_index_rejected(self):
        with pytest.raises(SemanticError, match="index"):
            check_main("int a[2]; print(a[1.5]);")

    def test_bitnot_int_only(self):
        with pytest.raises(SemanticError):
            check_main("print(~1.5);")

    def test_compound_assign_int_ops(self):
        with pytest.raises(SemanticError):
            check_main("float f = 1.0; f %= 2.0;")


class TestCallChecking:
    def test_arity(self):
        with pytest.raises(SemanticError, match="argument"):
            check("int f(int a) { return a; } int main() { print(f()); return 0; }")

    def test_array_param_requires_array(self):
        with pytest.raises(SemanticError):
            check("int f(int a[]) { return a[0]; } "
                  "int main() { print(f(3)); return 0; }")

    def test_array_element_type_checked(self):
        with pytest.raises(SemanticError):
            check("int f(int a[]) { return a[0]; } float x[2]; "
                  "int main() { print(f(x)); return 0; }")

    def test_builtin_arity(self):
        with pytest.raises(SemanticError):
            check_main("print(pow(2.0));")

    def test_scalar_args_convert(self):
        check("float f(float x) { return x; } "
              "int main() { print(f(3)); return 0; }")


class TestReturnsAndLoops:
    def test_return_type_mismatches(self):
        with pytest.raises(SemanticError, match="void"):
            check("void f() { return 1; } int main() { return 0; }")
        with pytest.raises(SemanticError, match="return"):
            check("int f() { return; } int main() { return 0; }")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError, match="break"):
            check_main("break;")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError, match="continue"):
            check_main("continue;")

    def test_annotations_set(self):
        prog = parse_program("int main() { int x = 1 + 2.0; return 0; }")
        analyze(prog)
        init = prog.functions[0].body.statements[0].init
        assert init.ty == "float"
        assert init.left.ty == "int"
