"""Failure-injection tests: the harness must classify *every* corrupted
execution, never crash the host.

Sweeps entire small programs (every injectable dynamic instruction x
several bit positions) at both layers, checking the outcome taxonomy is
total and the simulators always terminate within their step budget.
"""

import pytest

from repro.execresult import RunStatus
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import run_ir
from repro.machine.machine import run_asm
from repro.protection.duplication import duplicate_module

from tests.helpers import compile_and_build

#: programs chosen to maximise distinct failure surfaces
HOSTILE_PROGRAMS = {
    "pointer-chasing": """
int next[8] = {3, 0, 6, 5, 1, 7, 2, 4};
int main() {
    int cur = 0;
    for (int i = 0; i < 8; i++) { cur = next[cur]; print(cur); }
    return 0;
}
""",
    "division": """
int d[4] = {7, 3, 2, 5};
int main() {
    int acc = 1000;
    for (int i = 0; i < 4; i++) { acc = acc / d[i] + acc % d[i]; }
    print(acc);
    return 0;
}
""",
    "float-heavy": """
int main() {
    float x = 1.5;
    for (int i = 0; i < 6; i++) { x = x * 1.25 - 0.1 / (x + 2.0); }
    print(x);
    print(sqrt(fabs(x)));
    return 0;
}
""",
    "recursion": """
int gcd(int a, int b) {
    if (b == 0) { return a; }
    return gcd(b, a % b);
}
int main() { print(gcd(1071, 462)); return 0; }
""",
    "shifty": """
int main() {
    int h = 5381;
    for (int i = 0; i < 8; i++) {
        h = ((h << 5) + h) ^ (i * 31);
        h = h & 0xFFFFFFFF;
    }
    print(h);
    return 0;
}
""",
}

BITS = (0, 1, 31, 62, 63)


@pytest.mark.parametrize("name", sorted(HOSTILE_PROGRAMS))
class TestExhaustiveIrInjection:
    def test_every_fault_classified(self, name):
        module = compile_source(HOSTILE_PROGRAMS[name])
        golden = run_ir(module)
        assert golden.status is RunStatus.OK
        budget = golden.dyn_total * 4 + 1000
        for bit in BITS:
            for i in range(golden.dyn_injectable):
                res = run_ir(module, inject_index=i, inject_bit=bit,
                             max_steps=budget)
                assert res.status in (
                    RunStatus.OK, RunStatus.TRAP, RunStatus.DETECTED
                )
                assert res.dyn_total <= budget + 1


@pytest.mark.parametrize("name", ["pointer-chasing", "division", "recursion"])
class TestExhaustiveAsmInjection:
    def test_every_fault_classified(self, name):
        _, layout, _, compiled = compile_and_build(HOSTILE_PROGRAMS[name])
        golden = run_asm(compiled, layout)
        budget = golden.dyn_total * 4 + 1000
        for bit in (0, 40, 63):
            for i in range(golden.dyn_injectable):
                res = run_asm(compiled, layout, inject_index=i,
                              inject_bit=bit, max_steps=budget)
                assert res.status in (
                    RunStatus.OK, RunStatus.TRAP, RunStatus.DETECTED
                )


class TestProtectedExhaustive:
    def test_protected_division_never_diverges(self):
        module = compile_source(HOSTILE_PROGRAMS["division"])
        duplicate_module(module)
        golden = run_ir(module)
        budget = golden.dyn_total * 4 + 1000
        sdc = 0
        for i in range(golden.dyn_injectable):
            res = run_ir(module, inject_index=i, inject_bit=17,
                         max_steps=budget)
            if res.status is RunStatus.OK and res.output != golden.output:
                sdc += 1
        assert sdc == 0  # full IR-level protection catches everything

    def test_detector_fires_before_output_diverges_at_ir(self):
        """At IR level, a detected fault must not have printed wrong
        output before detection (checkers precede sync points)."""
        module = compile_source(HOSTILE_PROGRAMS["pointer-chasing"])
        duplicate_module(module)
        golden = run_ir(module)
        for i in range(0, golden.dyn_injectable, 3):
            res = run_ir(module, inject_index=i, inject_bit=5,
                         max_steps=golden.dyn_total * 4)
            if res.status is RunStatus.DETECTED:
                assert golden.output.startswith(res.output)
