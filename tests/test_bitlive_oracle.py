"""Exhaustive soundness oracle for the bit-liveness pruner (DESIGN §17).

The campaign pruner (:mod:`repro.analysis.bitlive`) classifies
(site, bit) pairs Benign *statically*; a pruned campaign then records
those draws without simulating them.  That is only sound if every
Benign-classified flip really leaves execution bit-identical.  This
suite proves it the hard way on small testgen programs:

* **exhaustive flips** — every Benign pair on every witness build is
  actually injected, at both layers, under both value fault models,
  across all three dispatch tiers (the engine-capable decoded/codegen
  tiers through :func:`repro.fi.prune.verify_benign`, the naive ladders
  through direct full executions), and must run status-OK with
  golden-identical output — zero misclassifications;
* **estimator invariance** — hypothesis property: for any generated
  program, a pruned campaign's SDC/DUE point estimates are *exactly*
  the unpruned campaign's (the draw is shared; pruning only skips
  simulation), which is trivially within CI width;
* **stratified agreement** — a stratified campaign at half the budget
  agrees with the uniform estimate within the summed CI half-widths.
"""

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings

from repro.backend.lower import lower_module
from repro.execresult import RunStatus
from repro.fi.campaign import CampaignConfig, run_asm_campaign, run_ir_campaign
from repro.fi.outcomes import Outcome
from repro.fi.prune import build_prune_plan, verify_benign
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import IRInterpreter
from repro.interp.layout import GlobalLayout
from repro.ir.verifier import verify_module
from repro.machine.machine import AsmMachine, compile_program
from repro.protection.duplication import duplicate_module
from repro.testgen import generate_ir, generate_minic
from repro.testgen.minic import GenConfig
from repro.testgen.mutants import BITLIVE_WITNESS_SOURCE
from repro.testgen.strategies import minic_programs

#: small integer-only programs: the oracle is exhaustive, so keep the
#: pair universe in the thousands, not the millions
SMALL = GenConfig(p_float=0.0, n_functions=(1, 1), n_main_stmts=(3, 4),
                  max_trip=3, n_global_arrays=(1, 1), array_pow2=(1, 2))

_SETTINGS = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _build(module, protect: bool):
    if protect:
        duplicate_module(module)
    verify_module(module)
    layout = GlobalLayout(module)
    compiled = compile_program(lower_module(module, layout).flatten())
    return module, layout, compiled


#: (tag, build) witness set: an unprotected and a dup-100 MiniC program
#: (checker shadowing matters on the latter), a direct-IR program, and
#: the carry witness whose add/mul results feed only high-bit masks
_WITNESSES = ("gen3", "gen3-dup", "irgen2", "carry")


@pytest.fixture(scope="module")
def witness_builds():
    return {
        "gen3": _build(
            compile_source(generate_minic(3, SMALL).source, "g3"), False),
        "gen3-dup": _build(
            compile_source(generate_minic(3, SMALL).source, "g3d"), True),
        "irgen2": _build(generate_ir(2), False),
        "carry": _build(
            compile_source(BITLIVE_WITNESS_SOURCE, "carry"), False),
    }


def _layer_kwargs(build, layer):
    module, layout, compiled = build
    if layer == "ir":
        return dict(module=module, layout=layout)
    return dict(program=compiled, layout=layout)


# -- exhaustive flips, engine tiers -------------------------------------


@pytest.mark.parametrize("fault_model", ["seu", "set"])
@pytest.mark.parametrize("dispatch", ["decoded", "codegen"])
@pytest.mark.parametrize("tag", _WITNESSES)
@pytest.mark.parametrize("layer", ["ir", "asm"])
def test_every_benign_pair_is_benign(witness_builds, tag, layer,
                                     dispatch, fault_model):
    """Flip every Benign-classified (site, bit) pair; any status or
    output change is a pruner misclassification."""
    rep = verify_benign(layer, fault_model=fault_model, dispatch=dispatch,
                        **_layer_kwargs(witness_builds[tag], layer))
    assert rep["violations"] == [], (
        f"{tag} {layer}/{dispatch}/{fault_model}: "
        f"{len(rep['violations'])} of {rep['pairs']} benign-classified "
        f"flips changed execution (first: {rep['violations'][:3]})")


# -- exhaustive flips, naive tier ---------------------------------------


@pytest.mark.parametrize("fault_model", ["seu", "set"])
@pytest.mark.parametrize("tag", ["gen3", "irgen2"])
@pytest.mark.parametrize("layer", ["ir", "asm"])
def test_benign_pairs_on_naive_tier(witness_builds, tag, layer, fault_model):
    """The naive ladders cannot replay from checkpoints, so the naive
    leg of the tier matrix injects through direct full executions on
    the two smallest witnesses."""
    module, layout, compiled = witness_builds[tag]
    plan = build_prune_plan(layer, fault_model=fault_model,
                            **_layer_kwargs(witness_builds[tag], layer))
    max_steps = max(20_000, plan.golden_dyn_total * 4)
    for dyn, bit in plan.benign_pairs():
        if layer == "ir":
            res = IRInterpreter(module, layout=layout, max_steps=max_steps,
                                dispatch="naive", fault_model=fault_model
                                ).run(inject_index=dyn, inject_bit=bit)
        else:
            res = AsmMachine(compiled, layout, max_steps=max_steps,
                             dispatch="naive", fault_model=fault_model
                             ).run(inject_index=dyn, inject_bit=bit)
        assert res.status is RunStatus.OK and \
            res.output == plan.golden_output, (
                f"{tag} {layer}/naive/{fault_model}: benign-classified "
                f"flip (dyn={dyn}, bit={bit}) changed execution: "
                f"{res.status.value}/{res.trap_kind}")


def test_oracle_is_not_vacuous(witness_builds):
    """The witness set must actually exercise the classifier: benign
    pairs at both layers, and protected site classes on the dup build."""
    pairs = {"ir": 0, "asm": 0}
    for tag in _WITNESSES:
        for layer in ("ir", "asm"):
            plan = build_prune_plan(
                layer, **_layer_kwargs(witness_builds[tag], layer))
            pairs[layer] += len(plan.benign_pairs())
    assert pairs["ir"] > 0 and pairs["asm"] > 0, pairs
    dup_plan = build_prune_plan(
        "ir", **_layer_kwargs(witness_builds["gen3-dup"], "ir"))
    classes = set(dup_plan.report.site_class.values())
    assert "protected" in classes and "live" in classes, classes


# -- estimator invariance (property) ------------------------------------


def _fold_benign(counts):
    folded = {o: k for o, k in counts.items()
              if o not in (Outcome.BENIGN, Outcome.PRUNE_BENIGN)}
    folded[Outcome.BENIGN] = (counts.get(Outcome.BENIGN, 0)
                              + counts.get(Outcome.PRUNE_BENIGN, 0))
    return folded


@_SETTINGS
@given(minic_programs(SMALL))
def test_pruning_never_moves_the_estimates(prog):
    """For any generated program, prune mode keeps the identical
    uniform draw, so every point estimate (and hence every CI) is
    exactly the unpruned campaign's at both layers."""
    module, layout, compiled = _build(
        compile_source(prog.source, f"p{prog.seed}"), True)
    base = CampaignConfig(n_campaigns=40, seed=prog.seed & 0xFFFF)
    for layer in ("ir", "asm"):
        if layer == "ir":
            uni = run_ir_campaign(module, base, layout)
            pruned = run_ir_campaign(module, replace(base, prune=True),
                                     layout)
        else:
            uni = run_asm_campaign(compiled, layout, base)
            pruned = run_asm_campaign(compiled, layout,
                                      replace(base, prune=True))
        u, p = uni.summary(), pruned.summary()
        for key in ("sdc", "due", "detected", "benign"):
            assert p[key] == u[key], (layer, key, p[key], u[key])
            lo, hi = u[f"{key}_ci"]
            assert abs(p[key] - u[key]) <= (hi - lo), (layer, key)
        assert _fold_benign(pruned.counts) == _fold_benign(uni.counts)


# -- stratified agreement -----------------------------------------------


@pytest.mark.parametrize("seed", [1, 3, 7])
@pytest.mark.parametrize("layer", ["ir", "asm"])
def test_stratified_estimates_agree_with_uniform(seed, layer):
    """A stratified campaign at half the uniform budget lands within
    the summed CI half-widths of the uniform estimate (deterministic
    for the fixed seeds)."""
    module, layout, compiled = _build(
        compile_source(generate_minic(seed, SMALL).source, f"s{seed}"), True)
    uni_cfg = CampaignConfig(n_campaigns=400, seed=11)
    strat_cfg = CampaignConfig(n_campaigns=200, seed=11,
                               prune=True, stratify=True)
    if layer == "ir":
        u = run_ir_campaign(module, uni_cfg, layout).summary()
        s = run_ir_campaign(module, strat_cfg, layout).summary()
    else:
        u = run_asm_campaign(compiled, layout, uni_cfg).summary()
        s = run_asm_campaign(compiled, layout, strat_cfg).summary()
    for key in ("sdc", "due"):
        lo_u, hi_u = u[f"{key}_ci"]
        lo_s, hi_s = s[f"{key}_ci"]
        bound = (hi_u - lo_u) / 2 + (hi_s - lo_s) / 2
        assert abs(s[key] - u[key]) <= bound, (
            f"{layer}/{key}: stratified {s[key]:.4f} vs uniform "
            f"{u[key]:.4f} beyond {bound:.4f}")
    assert s["strata"], "stratified summary carries no per-stratum rows"
