"""Tests for the experiment drivers (quick configurations)."""

import pytest

from repro.analysis.rootcause import Penetration
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentContext
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.figure2 import render_figure2, run_figure2
from repro.experiments.figure3 import PAPER_SHARES, render_figure3, run_figure3
from repro.experiments.figure17 import render_figure17, run_figure17
from repro.experiments.overhead import (
    average_extra_by_level,
    render_overhead,
    run_overhead,
)
from repro.experiments.compile_time import render_compile_time, run_compile_time


QUICK = ExperimentConfig(
    scale="tiny",
    campaigns=60,
    profile_campaigns=80,
    seed=5,
    benchmarks=("crc32", "pathfinder"),
    levels=(50, 100),
)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(QUICK)


class TestConfig:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        monkeypatch.setenv("REPRO_CAMPAIGNS", "42")
        monkeypatch.setenv("REPRO_BENCHMARKS", "crc32, lud")
        cfg = ExperimentConfig.from_env()
        assert cfg.scale == "tiny"
        assert cfg.campaigns == 42
        assert cfg.benchmarks == ("crc32", "lud")

    def test_all_keyword(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCHMARKS", "all")
        cfg = ExperimentConfig.from_env()
        assert len(cfg.benchmarks) == 16


class TestContextCaching:
    def test_profile_cached(self, ctx):
        a = ctx.profile("crc32")
        b = ctx.profile("crc32")
        assert a is b

    def test_raw_campaigns_cached(self, ctx):
        a = ctx.raw_campaigns("crc32")
        b = ctx.raw_campaigns("crc32")
        assert a is b


class TestTable1:
    def test_rows_and_render(self):
        rows = run_table1(QUICK)
        assert [r.benchmark for r in rows] == ["crc32", "pathfinder"]
        for r in rows:
            assert r.asm_dyn > r.ir_dyn > 0
        text = render_table1(rows)
        assert "crc32" in text and "Paper DI" in text


class TestFigure2(object):
    def test_cells_and_summary(self, ctx):
        result = run_figure2(context=ctx)
        assert len(result.cells) == 4  # 2 benchmarks x 2 levels
        for cell in result.cells:
            assert 0.0 <= cell.ir_coverage <= 1.0
            assert 0.0 <= cell.asm_coverage <= 1.0
        text = render_figure2(result)
        assert "average IR-vs-assembly coverage gap" in text

    def test_full_protection_ir_coverage_high(self, ctx):
        result = run_figure2(context=ctx)
        full = [c for c in result.cells if c.level == 100]
        for cell in full:
            assert cell.ir_coverage >= 0.95


class TestFigure3:
    def test_classification_totals(self, ctx):
        result = run_figure3(context=ctx)
        shares = result.shares()
        if result.total:
            assert abs(sum(shares.values()) - 1.0) < 1e-9
        text = render_figure3(result)
        assert "Paper share" in text

    def test_paper_share_constants(self):
        assert abs(sum(PAPER_SHARES.values()) - 1.001) < 0.01


class TestFigure17:
    def test_flowery_beats_id_on_average(self, ctx):
        result = run_figure17(context=ctx)
        assert result.cells
        id_asm, flowery = result.full_protection_averages()
        assert flowery >= id_asm
        text = render_figure17(result)
        assert "Flowery" in text


class TestOverhead:
    def test_rows_and_averages(self, ctx):
        rows = run_overhead(context=ctx)
        for r in rows:
            assert r.flowery_dyn >= r.id_dyn >= r.baseline_dyn
        avgs = average_extra_by_level(rows)
        assert set(avgs.keys()) == {50, 100}
        text = render_overhead(rows)
        assert "Flowery extra" in text


class TestCompileTime:
    def test_pass_timing(self):
        rows = run_compile_time(QUICK)
        for r in rows:
            assert r.static_instructions > 0
            assert r.duplication_seconds >= 0
            assert r.flowery_seconds >= 0
        assert "compile-time" in render_compile_time(rows)


class TestFaultMatrix:
    def test_all_cells_and_the_cf_deficiency(self):
        from repro.experiments.faultmatrix import (
            PROTECTION_CELLS,
            render_fault_matrix,
            run_fault_matrix,
        )

        cfg = ExperimentConfig(scale="tiny", campaigns=40,
                               profile_campaigns=80, seed=5,
                               benchmarks=("crc32",))
        result = run_fault_matrix(cfg)
        # 1 benchmark x 4 protections x 3 models x 2 layers
        assert len(result.cells) == 4 * 3 * 2
        for c in result.cells:
            assert c.n == 40
            assert abs(c.sdc + c.due + c.detected + c.benign - 1.0) < 1e-9
        # the paper's deficiency: unprotected detects nothing, dup is
        # weak against cf at the IR layer, CFC is not
        assert result.mean_detected("none", "cf", "ir") == 0.0
        assert result.mean_detected("cfc", "cf", "ir") > \
            result.mean_detected("dup-100", "cf", "ir")
        assert result.mean_detected("dup-100", "seu", "ir") > 0.5
        text = render_fault_matrix(result)
        assert "dup-100+cfc" in text and "mean detection" in text
        assert {p for p, _, _ in PROTECTION_CELLS} == \
            {"none", "dup-100", "cfc", "dup-100+cfc"}

    def test_matrix_build_covers_cfc_only_cells(self, ctx):
        built = ctx.matrix_build("crc32", None, True)
        assert built.protection is None and built.cfc_info is not None
        assert ctx.matrix_build("crc32", None, True) is built
        assert ctx.matrix_build("crc32", None, False) is \
            ctx.raw_build("crc32")
