"""Tests for SDC profiling and the knapsack protection planner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanError
from repro.frontend.codegen import compile_source
from repro.protection.duplication import duplicable_instructions
from repro.protection.planner import (
    SdcProfile,
    knapsack_exact,
    knapsack_greedy,
    plan_protection,
    profile_module,
)

SRC = """
int data[8] = {3, 1, 4, 1, 5, 9, 2, 6};
int main() {
    int s = 0;
    for (int i = 0; i < 8; i++) { s += data[i] * (i + 1); }
    print(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def profile():
    module = compile_source(SRC)
    return profile_module(module, n_campaigns=150, seed=1)


class TestProfiler:
    def test_profile_shape(self, profile):
        assert profile.campaigns == 150
        assert profile.golden_dyn_total > 0
        assert profile.golden_dyn_injectable > 0
        assert sum(profile.dyn_counts.values()) == profile.golden_dyn_total

    def test_sdc_attribution_bounded(self, profile):
        assert profile.sdc_total == sum(profile.sdc_counts.values())
        assert 0 <= profile.sdc_probability <= 1

    def test_profile_deterministic(self):
        module = compile_source(SRC)
        a = profile_module(module, n_campaigns=60, seed=7)
        b = profile_module(compile_source(SRC), n_campaigns=60, seed=7)
        assert a.sdc_counts == b.sdc_counts
        assert a.sdc_total == b.sdc_total

    def test_profile_finds_sdcs(self, profile):
        assert profile.sdc_total > 0


class TestKnapsackSolvers:
    ITEMS = [(1, 10.0, 5), (2, 6.0, 4), (3, 3.0, 3), (4, 1.0, 10),
             (5, 0.0, 0)]

    def test_greedy_respects_budget(self):
        chosen = knapsack_greedy(self.ITEMS, budget=9)
        cost = sum(c for i, b, c in self.ITEMS if i in chosen and c > 0)
        assert cost <= 9

    def test_zero_cost_items_always_taken(self):
        chosen = knapsack_greedy(self.ITEMS, budget=0)
        assert 5 in chosen

    def test_exact_respects_budget(self):
        chosen = knapsack_exact(self.ITEMS, budget=9)
        cost = sum(c for i, b, c in self.ITEMS if i in chosen and c > 0)
        assert cost <= 9

    def test_exact_at_least_as_good_as_greedy(self):
        # adversarial instance where greedy is suboptimal
        items = [(1, 6.0, 5), (2, 5.0, 4), (3, 5.0, 4)]
        budget = 8
        greedy = knapsack_greedy(items, budget)
        exact = knapsack_exact(items, budget)
        benefit = lambda s: sum(b for i, b, c in items if i in s)
        assert benefit(exact) >= benefit(greedy)
        assert benefit(exact) == 10.0

    def test_exact_size_guard(self):
        items = [(i, 1.0, 1) for i in range(1000)]
        with pytest.raises(PlanError):
            knapsack_exact(items, budget=100_000)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0, 100), st.integers(0, 20)
            ),
            min_size=1,
            max_size=10,
        ),
        st.integers(0, 60),
    )
    def test_property_exact_dominates_greedy(self, raw_items, budget):
        items = [(i, b, c) for i, (b, c) in enumerate(raw_items)]
        greedy = knapsack_greedy(items, budget)
        exact = knapsack_exact(items, budget)
        benefit = lambda s: sum(b for i, b, c in items if i in s)
        cost = lambda s: sum(c for i, b, c in items if i in s)
        assert cost(greedy) <= budget + 0  # zero-cost items are free
        assert cost(exact) <= budget
        assert benefit(exact) >= benefit(greedy) - 1e-9


class TestPlans:
    def test_full_protection_selects_everything(self, profile):
        module = compile_source(SRC)
        plan = plan_protection(module, profile, 100)
        assert plan.selected == {
            i.iid for i in duplicable_instructions(module)
        }
        assert plan.dynamic_fraction == 1.0

    @pytest.mark.parametrize("level", [30, 50, 70])
    def test_partial_budgets_respected(self, profile, level):
        module = compile_source(SRC)
        plan = plan_protection(module, profile, level)
        assert plan.spent <= plan.budget
        assert plan.budget == plan.total_cost * level // 100

    def test_levels_nest_monotonically_in_spend(self, profile):
        module = compile_source(SRC)
        spends = [
            plan_protection(module, profile, lvl).spent
            for lvl in (30, 50, 70, 100)
        ]
        assert spends == sorted(spends)

    def test_bad_level_rejected(self, profile):
        module = compile_source(SRC)
        with pytest.raises(PlanError):
            plan_protection(module, profile, 0)
        with pytest.raises(PlanError):
            plan_protection(module, profile, 101)

    def test_bad_solver_rejected(self, profile):
        module = compile_source(SRC)
        with pytest.raises(PlanError):
            plan_protection(module, profile, 50, solver="magic")

    def test_exact_solver_usable(self, profile):
        module = compile_source(SRC)
        plan = plan_protection(module, profile, 50, solver="exact")
        assert plan.spent <= plan.budget

    def test_plan_prefers_high_sdc_instructions(self, profile):
        module = compile_source(SRC)
        plan = plan_protection(module, profile, 30)
        if plan.selected and profile.sdc_counts:
            top_sdc = max(profile.sdc_counts, key=profile.sdc_counts.get)
            # the single most SDC-prone instruction should be selected
            # whenever it fits the budget at all
            cost = profile.dyn_counts.get(top_sdc, 0)
            if cost <= plan.budget:
                assert top_sdc in plan.selected
