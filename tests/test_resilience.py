"""Tests for resilient campaign execution: injection journal,
checkpoint/resume, and the crash-tolerant chunked supervisor."""

import json
import os

import pytest

from repro.errors import CampaignError
from repro.experiments import ExperimentConfig, ExperimentContext
from repro.fi.campaign import CampaignConfig
from repro.fi.parallel import WorkSpec, run_parallel_campaign
from repro.fi.resilience import (
    InjectionJournal,
    ResiliencePolicy,
    campaign_key,
)
from repro.trace import CampaignObserver

SRC = """
int data[6] = {4, 2, 7, 1, 9, 3};
int main() {
    int best = data[0];
    for (int i = 1; i < 6; i++) {
        if (data[i] > best) { best = data[i]; }
    }
    print(best);
    return 0;
}
"""

BAD_GOLDEN_SRC = "int main() { int z = 0; print(1 / z); return 0; }"


def _records(res):
    return [(r.dyn_index, r.bit, r.outcome, r.iid, r.asm_index,
             r.asm_role, r.asm_opcode, r.trap_kind) for r in res.records]


def _assert_identical(a, b):
    assert a.layer == b.layer and a.n == b.n
    assert a.counts == b.counts
    assert a.golden_output == b.golden_output
    assert a.golden_dyn_total == b.golden_dyn_total
    assert a.golden_dyn_injectable == b.golden_dyn_injectable
    assert _records(a) == _records(b)


class TestCampaignKey:
    def test_stable(self):
        spec = WorkSpec(source=SRC, layer="asm")
        cfg = CampaignConfig(n_campaigns=10, seed=1)
        assert campaign_key(spec, cfg) == campaign_key(spec, cfg)

    def test_config_changes_key(self):
        spec = WorkSpec(source=SRC, layer="asm")
        a = campaign_key(spec, CampaignConfig(n_campaigns=10, seed=1))
        b = campaign_key(spec, CampaignConfig(n_campaigns=10, seed=2))
        c = campaign_key(spec, CampaignConfig(n_campaigns=11, seed=1))
        assert len({a, b, c}) == 3

    def test_spec_changes_key(self):
        cfg = CampaignConfig(n_campaigns=10, seed=1)
        a = campaign_key(WorkSpec(source=SRC, layer="asm"), cfg)
        b = campaign_key(WorkSpec(source=SRC, layer="ir"), cfg)
        c = campaign_key(WorkSpec(source=SRC, layer="asm", level=100), cfg)
        assert len({a, b, c}) == 3

    def test_selected_set_order_irrelevant(self):
        cfg = CampaignConfig(n_campaigns=5)
        a = WorkSpec(source=SRC, selected=frozenset({3, 1, 2}))
        b = WorkSpec(source=SRC, selected=frozenset({2, 3, 1}))
        assert campaign_key(a, cfg) == campaign_key(b, cfg)


class TestInjectionJournal:
    def test_journaled_run_writes_header_and_rows(self, tmp_path):
        spec = WorkSpec(source=SRC, layer="asm")
        cfg = CampaignConfig(n_campaigns=12, seed=3)
        path = tmp_path / "c.jsonl"
        run_parallel_campaign(spec, cfg, workers=1,
                              journal_path=str(path))
        lines = path.read_text().splitlines()
        head = json.loads(lines[0])
        assert head["ev"] == "header"
        assert head["key"] == campaign_key(spec, cfg)
        rows = [json.loads(ln) for ln in lines[1:]]
        assert len(rows) == 12
        assert sorted(r["i"] for r in rows) == list(range(12))

    def test_journaled_result_matches_plain_serial(self, tmp_path):
        spec = WorkSpec(source=SRC, layer="asm")
        cfg = CampaignConfig(n_campaigns=25, seed=3)
        plain = run_parallel_campaign(spec, cfg, workers=1)
        journaled = run_parallel_campaign(
            spec, cfg, workers=1, journal_path=str(tmp_path / "c.jsonl"))
        _assert_identical(plain, journaled)

    def test_full_journal_replays_without_reexecution(self, tmp_path):
        spec = WorkSpec(source=SRC, layer="ir")
        cfg = CampaignConfig(n_campaigns=10, seed=5)
        path = str(tmp_path / "c.jsonl")
        first = run_parallel_campaign(spec, cfg, workers=1,
                                      journal_path=path)
        obs = CampaignObserver()
        second = run_parallel_campaign(spec, cfg, workers=1,
                                       journal_path=path, observer=obs)
        _assert_identical(first, second)
        resumes = [e for e in obs.resilience_events()
                   if e["ev"] == "resume"]
        assert resumes and resumes[0]["skipped"] == 10

    def test_key_mismatch_rejected(self, tmp_path):
        spec = WorkSpec(source=SRC, layer="asm")
        path = str(tmp_path / "c.jsonl")
        run_parallel_campaign(spec, CampaignConfig(n_campaigns=5, seed=1),
                              workers=1, journal_path=path)
        with pytest.raises(CampaignError, match="different campaign"):
            run_parallel_campaign(
                spec, CampaignConfig(n_campaigns=5, seed=2),
                workers=1, journal_path=path)

    def test_headerless_journal_rejected(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(CampaignError, match="header"):
            run_parallel_campaign(
                WorkSpec(source=SRC), CampaignConfig(n_campaigns=5),
                workers=1, journal_path=str(path))

    def test_peek_round_trips_spec_and_config(self, tmp_path):
        spec = WorkSpec(source=SRC, name="bench", level=100,
                        flowery=True, layer="ir",
                        selected=frozenset({1, 2}))
        cfg = CampaignConfig(n_campaigns=7, seed=9)
        path = str(tmp_path / "c.jsonl")
        journal = InjectionJournal.open(path, spec, cfg)
        journal.close()
        got_spec, got_cfg, completed = InjectionJournal.peek(path)
        assert got_spec == spec
        assert got_cfg == cfg
        assert completed == {}

    def test_peek_missing_file(self, tmp_path):
        with pytest.raises(CampaignError, match="no journal"):
            InjectionJournal.peek(str(tmp_path / "absent.jsonl"))


class TestKillAndResume:
    """A journal truncated at an arbitrary point — the on-disk state
    after SIGKILL — must resume to a bit-identical result."""

    @pytest.mark.parametrize("layer", ["ir", "asm"])
    def test_resumed_equals_uninterrupted(self, tmp_path, layer):
        spec = WorkSpec(source=SRC, layer=layer)
        cfg = CampaignConfig(n_campaigns=20, seed=7)
        clean = run_parallel_campaign(spec, cfg, workers=1)
        full = tmp_path / "full.jsonl"
        run_parallel_campaign(spec, cfg, workers=1,
                              journal_path=str(full))
        lines = full.read_text().splitlines(keepends=True)
        # interrupt after 8 classified samples, mid-write of the 9th
        torn = "".join(lines[:9]) + lines[9][:len(lines[9]) // 2]
        interrupted = tmp_path / "interrupted.jsonl"
        interrupted.write_text(torn)
        obs = CampaignObserver()
        resumed = run_parallel_campaign(
            spec, cfg, workers=1, journal_path=str(interrupted),
            observer=obs)
        _assert_identical(clean, resumed)
        resumes = [e for e in obs.resilience_events()
                   if e["ev"] == "resume"]
        assert resumes and resumes[0]["skipped"] == 8

    def test_resume_at_every_truncation_point(self, tmp_path):
        spec = WorkSpec(source=SRC, layer="asm")
        cfg = CampaignConfig(n_campaigns=8, seed=2)
        clean = run_parallel_campaign(spec, cfg, workers=1)
        full = tmp_path / "full.jsonl"
        run_parallel_campaign(spec, cfg, workers=1,
                              journal_path=str(full))
        lines = full.read_text().splitlines(keepends=True)
        for cut in range(1, len(lines)):
            part = tmp_path / f"cut{cut}.jsonl"
            part.write_text("".join(lines[:cut]))
            resumed = run_parallel_campaign(spec, cfg, workers=1,
                                            journal_path=str(part))
            _assert_identical(clean, resumed)


class TestGoldenFailure:
    @pytest.mark.parametrize("layer", ["ir", "asm"])
    def test_error_names_layer_and_trap_kind(self, layer):
        spec = WorkSpec(source=BAD_GOLDEN_SRC, layer=layer)
        with pytest.raises(CampaignError) as exc:
            run_parallel_campaign(spec, CampaignConfig(n_campaigns=5),
                                  workers=1)
        msg = str(exc.value)
        assert f"golden {layer} run failed" in msg
        assert "div-by-zero" in msg


class TestResiliencePolicy:
    def test_bad_values_rejected(self):
        with pytest.raises(CampaignError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(CampaignError):
            ResiliencePolicy(chunk_timeout=0)
        with pytest.raises(CampaignError):
            ResiliencePolicy(max_chunk=0)


class TestDegradation:
    def test_broken_spawn_context_falls_back_to_serial(self, monkeypatch):
        import repro.fi.resilience as resilience

        def broken(kind):
            raise ValueError("spawn start method unavailable")

        monkeypatch.setattr(resilience, "get_context", broken)
        spec = WorkSpec(source=SRC, layer="ir")
        cfg = CampaignConfig(n_campaigns=15, seed=4)
        obs = CampaignObserver()
        degraded = run_parallel_campaign(spec, cfg, workers=4,
                                         observer=obs)
        serial = run_parallel_campaign(spec, cfg, workers=1)
        _assert_identical(degraded, serial)
        assert any(e["ev"] == "degrade"
                   for e in obs.resilience_events())

    def test_degraded_run_still_journals(self, tmp_path, monkeypatch):
        import repro.fi.resilience as resilience

        def broken(kind):
            raise ValueError("no spawn")

        monkeypatch.setattr(resilience, "get_context", broken)
        spec = WorkSpec(source=SRC, layer="asm")
        cfg = CampaignConfig(n_campaigns=10, seed=4)
        path = tmp_path / "c.jsonl"
        run_parallel_campaign(spec, cfg, workers=4,
                              journal_path=str(path))
        rows = [json.loads(ln) for ln in
                path.read_text().splitlines()[1:]]
        assert len(rows) == 10


@pytest.mark.slow
class TestSupervisor:
    """Spawn-process paths: worker crash, hang, and tiny campaigns."""

    def test_worker_crash_recovered_bit_identical(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CRASH_SENTINEL",
                           str(tmp_path / "crash"))
        spec = WorkSpec(source=SRC, layer="asm")
        cfg = CampaignConfig(n_campaigns=16, seed=6)
        obs = CampaignObserver()
        par = run_parallel_campaign(spec, cfg, workers=2, observer=obs)
        monkeypatch.delenv("REPRO_TEST_CRASH_SENTINEL")
        ser = run_parallel_campaign(spec, cfg, workers=1)
        _assert_identical(par, ser)
        retries = [e for e in obs.resilience_events()
                   if e["ev"] == "retry"]
        assert retries and "died" in retries[0]["reason"]

    def test_watchdog_recovers_hung_worker(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_HANG_SENTINEL",
                           str(tmp_path / "hang"))
        spec = WorkSpec(source=SRC, layer="ir")
        cfg = CampaignConfig(n_campaigns=10, seed=6)
        obs = CampaignObserver()
        par = run_parallel_campaign(
            spec, cfg, workers=2, observer=obs,
            policy=ResiliencePolicy(chunk_timeout=3.0))
        monkeypatch.delenv("REPRO_TEST_HANG_SENTINEL")
        ser = run_parallel_campaign(spec, cfg, workers=1)
        _assert_identical(par, ser)
        assert any(e["ev"] == "timeout"
                   for e in obs.resilience_events())

    def test_crash_exhausts_retries(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CRASH_SENTINEL",
                           str(tmp_path / "crash"))
        spec = WorkSpec(source=SRC, layer="ir")
        cfg = CampaignConfig(n_campaigns=8, seed=6)
        with pytest.raises(CampaignError, match="permanently failed"):
            run_parallel_campaign(spec, cfg, workers=2,
                                  policy=ResiliencePolicy(max_retries=0))

    def test_fewer_campaigns_than_workers(self):
        # regression: the old stride-chunk stitching mapped results to
        # the wrong samples when n_campaigns < workers
        spec = WorkSpec(source=SRC, layer="asm")
        cfg = CampaignConfig(n_campaigns=3, seed=6)
        par = run_parallel_campaign(spec, cfg, workers=8)
        ser = run_parallel_campaign(spec, cfg, workers=1)
        _assert_identical(par, ser)

    def test_crash_mid_campaign_journal_then_resume(self, tmp_path,
                                                    monkeypatch):
        # a worker crash and a process kill in the same campaign: the
        # journal keeps rows from the crashed attempt, and a resumed
        # run completes to the uninterrupted result
        spec = WorkSpec(source=SRC, layer="asm")
        cfg = CampaignConfig(n_campaigns=12, seed=8)
        clean = run_parallel_campaign(spec, cfg, workers=1)
        path = str(tmp_path / "c.jsonl")
        monkeypatch.setenv("REPRO_TEST_CRASH_SENTINEL",
                           str(tmp_path / "crash"))
        par = run_parallel_campaign(spec, cfg, workers=2,
                                    journal_path=path)
        monkeypatch.delenv("REPRO_TEST_CRASH_SENTINEL")
        _assert_identical(clean, par)
        resumed = run_parallel_campaign(spec, cfg, workers=1,
                                        journal_path=path)
        _assert_identical(clean, resumed)


class TestExperimentContextJournaling:
    def test_context_resumes_from_journal_dir(self, tmp_path):
        cfg = ExperimentConfig(scale="tiny", campaigns=10,
                               benchmarks=("crc32",),
                               journal_dir=str(tmp_path))
        first = ExperimentContext(cfg).raw_campaigns("crc32")
        journals = sorted(p.name for p in tmp_path.glob("*.jsonl"))
        assert len(journals) == 2      # ir + asm
        second = ExperimentContext(cfg).raw_campaigns("crc32")
        for a, b in zip(first, second):
            _assert_identical(a, b)

    def test_journal_dir_off_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_JOURNAL_DIR", raising=False)
        ctx = ExperimentContext(ExperimentConfig(scale="tiny",
                                                 campaigns=5,
                                                 benchmarks=("crc32",)))
        assert ctx.journal_dir is None

    def test_env_configures_journal_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path))
        assert ExperimentConfig.from_env().journal_dir == str(tmp_path)
        monkeypatch.setenv("REPRO_JOURNAL_DIR", "")
        assert ExperimentConfig.from_env().journal_dir is None
