"""Unit tests for small shared modules: formatting, intrinsics,
execution results, errors, id allocation."""

import math

import pytest

from repro.errors import (
    FaultDetected,
    IRError,
    ParseError,
    ReproError,
    SimTrap,
)
from repro.execresult import ExecResult, RunStatus
from repro.ir.intrinsics import (
    DETECT,
    INTRINSICS,
    intrinsic_signature,
    is_intrinsic,
    math_impl,
)
from repro.ir import types as T
from repro.utils.fmt import format_char, format_f64, format_i64
from repro.utils.ids import IdAllocator


class TestFormatting:
    def test_ints(self):
        assert format_i64(0) == "0"
        assert format_i64(-42) == "-42"

    def test_floats_use_printf_g(self):
        assert format_f64(1.0) == "1"
        assert format_f64(0.5) == "0.5"
        assert format_f64(1 / 3) == "0.333333"
        assert format_f64(1e20) == "1e+20"
        assert format_f64(-2.5e-7) == "-2.5e-07"

    def test_float_specials(self):
        assert format_f64(float("nan")) == "nan"
        assert format_f64(float("inf")) == "inf"
        assert format_f64(float("-inf")) == "-inf"

    def test_small_perturbations_invisible(self):
        # the SDC oracle property: sub-precision changes are benign
        assert format_f64(1.0) == format_f64(1.0 + 1e-12)

    def test_chars_masked_to_ascii(self):
        assert format_char(65) == "A"
        assert format_char(65 + 128) == "A"


class TestIntrinsics:
    def test_registry(self):
        assert is_intrinsic("print_i64")
        assert is_intrinsic(DETECT)
        assert not is_intrinsic("nonsense")

    def test_signatures(self):
        params, ret = intrinsic_signature("pow_f64")
        assert len(params) == 2
        assert ret is T.F64

    def test_math_impls_match_libm(self):
        assert math_impl("sqrt_f64")(9.0) == 3.0
        assert math_impl("pow_f64")(2.0, 8.0) == 256.0
        assert math_impl("floor_f64")(2.9) == 2.0

    def test_math_domain_errors_return_nan(self):
        assert math.isnan(math_impl("sqrt_f64")(-1.0))
        assert math.isnan(math_impl("log_f64")(-5.0))

    def test_math_overflow_returns_nan_not_raise(self):
        out = math_impl("exp_f64")(1e10)
        assert math.isnan(out) or math.isinf(out)

    def test_every_intrinsic_has_host_impl_or_runtime(self):
        for name, (params, ret) in INTRINSICS.items():
            if name.endswith("_f64") and not name.startswith("print"):
                assert callable(math_impl(name))


class TestExecResult:
    def test_completed_flag(self):
        ok = ExecResult(RunStatus.OK, "", 1, 1)
        assert ok.completed
        trap = ExecResult(RunStatus.TRAP, "", 1, 1, trap_kind="segfault")
        assert not trap.completed


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(IRError, ReproError)
        assert issubclass(ParseError, ReproError)
        assert not issubclass(SimTrap, ReproError)  # program-side, not host
        assert not issubclass(FaultDetected, ReproError)

    def test_parse_error_position(self):
        err = ParseError("bad", 3, 7)
        assert "3:7" in str(err)
        assert err.line == 3 and err.col == 7

    def test_simtrap_kind(self):
        t = SimTrap("segfault", "at 0x0")
        assert t.kind == "segfault"
        assert "segfault" in str(t)


class TestIdAllocator:
    def test_monotonic_unique(self):
        alloc = IdAllocator()
        ids = [alloc.next() for _ in range(100)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 100
        assert ids[0] == 1

    def test_custom_start(self):
        assert IdAllocator(start=50).next() == 50
