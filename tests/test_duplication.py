"""Tests for the SWIFT-style instruction duplication pass."""

import pytest

from repro.execresult import RunStatus
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import run_ir
from repro.ir.instructions import Call, CondBr, ICmp, Store
from repro.ir.verifier import verify_module
from repro.protection.duplication import (
    duplicable_instructions,
    duplicate_module,
    is_duplicable,
)

SIMPLE = """
int g = 5;
int out = 0;
int main() {
    int x = g + 1;
    out = x * 2;
    if (out > 10) { print(out); } else { print(0); }
    return 0;
}
"""


@pytest.fixture
def dup_module():
    module = compile_source(SIMPLE)
    golden = run_ir(module)
    info = duplicate_module(module)
    return module, info, golden


class TestStructure:
    def test_module_still_verifies(self, dup_module):
        module, _, _ = dup_module
        verify_module(module)

    def test_semantics_preserved(self, dup_module):
        module, _, golden = dup_module
        res = run_ir(module)
        assert res.status is RunStatus.OK
        assert res.output == golden.output

    def test_shadows_follow_masters(self, dup_module):
        module, info, _ = dup_module
        for fn in module.functions.values():
            for block in fn.blocks:
                for i, inst in enumerate(block.instructions):
                    if inst.is_shadow:
                        master_iid = inst.attrs["dup_of"]
                        prev = block.instructions[i - 1]
                        assert prev.iid == master_iid

    def test_shadow_map_consistent(self, dup_module):
        module, info, _ = dup_module
        by_iid = {i.iid: i for i in module.instructions()}
        for shadow_iid, master_iid in info.shadow_of.items():
            shadow = by_iid[shadow_iid]
            master = by_iid[master_iid]
            assert shadow.opcode == master.opcode
            assert master.is_protected

    def test_checkers_guard_sync_points(self, dup_module):
        module, info, _ = dup_module
        assert info.checker_count() > 0
        by_iid = {i.iid: i for i in module.instructions()}
        for cid, cinfo in info.checkers.items():
            checker = by_iid[cid]
            assert checker.is_checker
            sync = by_iid[cinfo.sync_iid]
            assert sync.is_sync_point

    def test_checker_followed_by_its_branch(self, dup_module):
        module, info, _ = dup_module
        by_iid = {i.iid: i for i in module.instructions()}
        for cid in info.checkers:
            checker = by_iid[cid]
            block = checker.parent
            term = block.terminator
            assert isinstance(term, CondBr)
            assert term.condition is checker
            assert term.is_checker

    def test_detect_block_exists(self, dup_module):
        module, info, _ = dup_module
        assert "main" in info.detect_blocks
        detect = module.function("main").block_by_label(
            info.detect_blocks["main"]
        )
        call = detect.instructions[0]
        assert isinstance(call, Call)
        assert call.callee_name == "__detect"

    def test_cones_cover_dependencies(self, dup_module):
        module, info, _ = dup_module
        # every protected instruction reachable from a checked value must
        # be guarded by at least one checker
        for cid, cinfo in info.checkers.items():
            assert cinfo.value_iid in cinfo.covers
        for iid, checkers in info.guarded_by.items():
            assert checkers

    def test_shadows_not_reprotected(self, dup_module):
        module, _, _ = dup_module
        for inst in module.instructions():
            if inst.is_shadow:
                assert not is_duplicable(inst)
            if inst.is_checker:
                assert not is_duplicable(inst)


class TestSelectiveness:
    def test_empty_selection_changes_nothing(self):
        module = compile_source(SIMPLE)
        before = module.static_instruction_count()
        info = duplicate_module(module, protected=set())
        assert module.static_instruction_count() == before
        assert info.checker_count() == 0

    def test_partial_selection(self):
        module = compile_source(SIMPLE)
        candidates = duplicable_instructions(module)
        subset = {candidates[0].iid, candidates[1].iid}
        info = duplicate_module(module, protected=subset)
        assert info.protected == subset
        res = run_ir(module)
        assert res.status is RunStatus.OK

    def test_store_mode_validation(self):
        module = compile_source(SIMPLE)
        with pytest.raises(Exception):
            duplicate_module(module, store_mode="bogus")


class TestDynamicBehaviour:
    def test_full_protection_detects_all_ir_sdcs(self):
        """The paper's correctness baseline: at IR level, full duplication
        detects every SDC (Observation 3 notes IR-level coverage is 100%)."""
        module = compile_source(SIMPLE)
        golden_unprot = run_ir(compile_source(SIMPLE))
        duplicate_module(module)
        golden = run_ir(module)
        assert golden.output == golden_unprot.output
        sdc = 0
        for i in range(golden.dyn_injectable):
            r = run_ir(module, inject_index=i, inject_bit=13,
                       max_steps=golden.dyn_total * 4)
            if r.status is RunStatus.OK and r.output != golden.output:
                sdc += 1
        assert sdc == 0

    def test_detection_happens(self):
        module = compile_source(SIMPLE)
        duplicate_module(module)
        golden = run_ir(module)
        detected = 0
        for i in range(golden.dyn_injectable):
            r = run_ir(module, inject_index=i, inject_bit=13,
                       max_steps=golden.dyn_total * 4)
            if r.status is RunStatus.DETECTED:
                detected += 1
        assert detected > 0

    def test_overhead_roughly_doubles_dynamic_count(self):
        module = compile_source(SIMPLE)
        base = run_ir(module).dyn_total
        duplicate_module(module)
        prot = run_ir(module).dyn_total
        assert prot > base
        assert prot < base * 3

    def test_eager_and_lazy_same_output(self):
        for mode in ("lazy", "eager"):
            module = compile_source(SIMPLE)
            duplicate_module(module, store_mode=mode)
            verify_module(module)
            assert run_ir(module).output == "12\n"


class TestOnBenchmarks:
    @pytest.mark.parametrize("bench", ["crc32", "pathfinder", "knn"])
    def test_benchmark_protection_roundtrip(self, bench):
        from repro.benchsuite.registry import load_source

        src = load_source(bench, "tiny")
        module = compile_source(src, bench)
        golden = run_ir(module)
        duplicate_module(module)
        verify_module(module)
        res = run_ir(module)
        assert res.output == golden.output
