"""Differential testing of the two execution layers at IR granularity.

Random straight-line IR built directly through the builder (bypassing
MiniC) — every value printed at the end.  The interpreter and the
machine must agree bit-for-bit on every program, which exercises
operand/addressing combinations the frontend never emits (constant
left operands, chained geps, i1 arithmetic, deep expression reuse).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backend.lower import lower_module
from repro.execresult import RunStatus
from repro.interp.interpreter import run_ir
from repro.interp.layout import GlobalLayout
from repro.ir import types as T
from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import function_type
from repro.ir.verifier import verify_module
from repro.machine.machine import compile_program, run_asm

_INT_OPS = ["add", "sub", "mul", "and", "or", "xor", "shl", "ashr", "lshr"]
_FP_OPS = ["fadd", "fsub", "fmul"]
_ICMP = ["eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ugt"]


@st.composite
def straightline_program(draw):
    """(ops descriptor list) -> a module printing every computed value."""
    module = Module("diff")
    gvals = draw(st.lists(st.integers(-100, 100), min_size=2, max_size=4))
    garr = module.global_var("data", T.array(T.I64, len(gvals)), gvals)
    fn = module.add_function("main", function_type(T.VOID, []))
    b = IRBuilder(fn)
    b.set_block(b.new_block("entry"))

    int_vals = [b.i64(draw(st.integers(-50, 50))) for _ in range(2)]
    fp_vals = [b.f64(draw(st.floats(-8, 8, allow_nan=False)))]

    # seed with loads from the global array
    for i in range(len(gvals)):
        p = b.gep(garr, b.i64(i))
        int_vals.append(b.load(p))

    n_ops = draw(st.integers(3, 14))
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["int", "fp", "cmp", "sel", "cast"]))
        if kind == "int":
            op = draw(st.sampled_from(_INT_OPS))
            a = draw(st.sampled_from(int_vals))
            c = draw(st.sampled_from(int_vals))
            int_vals.append(b.binop(op, a, c))
        elif kind == "fp":
            op = draw(st.sampled_from(_FP_OPS))
            a = draw(st.sampled_from(fp_vals))
            c = draw(st.sampled_from(fp_vals))
            fp_vals.append(b.binop(op, a, c))
        elif kind == "cmp":
            pred = draw(st.sampled_from(_ICMP))
            a = draw(st.sampled_from(int_vals))
            c = draw(st.sampled_from(int_vals))
            int_vals.append(b.zext(b.icmp(pred, a, c), T.I64))
        elif kind == "sel":
            a = draw(st.sampled_from(int_vals))
            c = draw(st.sampled_from(int_vals))
            cond = b.icmp("slt", a, c)
            int_vals.append(b.select(cond, a, c))
        else:
            a = draw(st.sampled_from(int_vals))
            fp_vals.append(b.sitofp(a))

    for v in int_vals:
        b.call("print_i64", [v], ret_type=T.VOID)
    for v in fp_vals:
        b.call("print_f64", [v], ret_type=T.VOID)
    b.ret()
    return module


_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@_SETTINGS
@given(straightline_program())
def test_layers_agree_on_random_straightline_ir(module):
    verify_module(module)
    layout = GlobalLayout(module)
    compiled = compile_program(lower_module(module, layout).flatten())
    ir = run_ir(module, layout=layout)
    asm = run_asm(compiled, layout)
    assert ir.status is RunStatus.OK
    assert asm.status is RunStatus.OK
    assert asm.output == ir.output


@_SETTINGS
@given(straightline_program())
def test_layers_agree_under_full_duplication(module):
    from repro.protection.duplication import duplicate_module

    golden = run_ir(module)
    duplicate_module(module)
    verify_module(module)
    layout = GlobalLayout(module)
    compiled = compile_program(lower_module(module, layout).flatten())
    ir = run_ir(module, layout=layout)
    asm = run_asm(compiled, layout)
    assert ir.output == golden.output
    assert asm.output == golden.output
