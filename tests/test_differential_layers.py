"""Differential testing of the two execution layers at IR granularity.

Random straight-line IR comes from the shared seed-deterministic
generator in :mod:`repro.testgen.irgen` via the
:mod:`repro.testgen.strategies` wrappers (one generator, no drift with
the differential oracle).  It bypasses the MiniC frontend to exercise
operand/addressing combinations the frontend never emits — constant
left operands, computed masked gep indices, stores through computed
pointers, i1 arithmetic, deep expression reuse.  The interpreter and
the machine must agree bit-for-bit on every program.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.backend.lower import lower_module
from repro.execresult import RunStatus
from repro.interp.interpreter import run_ir
from repro.interp.layout import GlobalLayout
from repro.ir.verifier import verify_module
from repro.machine.machine import compile_program, run_asm
from repro.testgen.strategies import ir_modules

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@_SETTINGS
@given(ir_modules())
def test_layers_agree_on_random_straightline_ir(module):
    verify_module(module)
    layout = GlobalLayout(module)
    compiled = compile_program(lower_module(module, layout).flatten())
    ir = run_ir(module, layout=layout)
    asm = run_asm(compiled, layout)
    assert ir.status is RunStatus.OK
    assert asm.status is RunStatus.OK
    assert asm.output == ir.output


@_SETTINGS
@given(ir_modules())
def test_layers_agree_under_full_duplication(module):
    from repro.protection.duplication import duplicate_module

    golden = run_ir(module)
    duplicate_module(module)
    verify_module(module)
    layout = GlobalLayout(module)
    compiled = compile_program(lower_module(module, layout).flatten())
    ir = run_ir(module, layout=layout)
    asm = run_asm(compiled, layout)
    assert ir.output == golden.output
    assert asm.output == golden.output
