"""Fault containment contract (DESIGN §11) and its chaos fuzzer.

Covers the resource budgets (memory cells, call depth, output bytes),
the host-escape boundary in all four execution paths, the trap-kind
rename back-compat alias, the resilience layer's per-sample exhaustion
guard, and — critically — that the chaos fuzzer *detects* an unguarded
path instead of passing vacuously."""

import pytest

import repro.interp.interpreter as interp_mod
from repro.contain import (
    DEFAULT_MAX_CALL_DEPTH,
    HOST_ESCAPE,
    OutputBuffer,
    containment_enabled,
    host_escape_result,
)
from repro.errors import SimTrap
from repro.execresult import ExecResult, RunStatus
from repro.fi.chaos import CHAOS_SCHEMA, chaos_sweep, render_chaos
from repro.fi.outcomes import (
    Outcome,
    canonical_trap_kind,
    classify_outcome,
)
from repro.fi.resilience import _execute_sample, record_from_row
from repro.interp.interpreter import IRInterpreter
from repro.machine.machine import AsmMachine
from repro.memorymodel import Memory
from repro.pipeline import build_from_source

LOOP_SRC = """
int acc[1] = {0};
int main() {
    for (int i = 0; i < 20; i++) { acc[0] = acc[0] + i; }
    print(acc[0]);
    return 0;
}
"""

RECURSE_SRC = """
int down(int n) {
    if (n <= 0) { return 0; }
    return down(n - 1) + 1;
}
int main() { print(down(30)); return 0; }
"""

PRINT_SRC = """
int main() {
    for (int i = 0; i < 50; i++) { print(i); }
    return 0;
}
"""


@pytest.fixture(scope="module")
def loop_built():
    return build_from_source(LOOP_SRC, name="chaos_loop")


@pytest.fixture(scope="module")
def recurse_built():
    return build_from_source(RECURSE_SRC, name="chaos_rec")


@pytest.fixture(scope="module")
def print_built():
    return build_from_source(PRINT_SRC, name="chaos_print")


def _sims(built, layer, **kw):
    """Both dispatch modes of one simulator configuration."""
    if layer == "ir":
        return [IRInterpreter(built.module, layout=built.layout,
                              dispatch=d, **kw)
                for d in ("naive", "decoded")]
    return [AsmMachine(built.compiled, built.layout, dispatch=d, **kw)
            for d in ("naive", "decoded")]


def _trap_sig(res):
    return (res.status.value, res.trap_kind, res.dyn_total,
            res.dyn_injectable, res.output)


# ---------------------------------------------------------------------------
# resource budgets
# ---------------------------------------------------------------------------

class TestOutputBudget:
    def test_output_buffer_accounting(self):
        buf = OutputBuffer(budget=10)
        buf.append("abc")
        buf.append("defg")
        assert buf.nbytes == 7
        with pytest.raises(SimTrap) as exc:
            buf.append("xxxx")          # would be 11 > 10
        assert exc.value.kind == "output-budget"
        assert list(buf) == ["abc", "defg"]

    def test_slice_assignment_recomputes(self):
        buf = OutputBuffer(budget=100)
        buf.append("abcdef")
        buf[:] = ("xy",)                # the snapshot-restore path
        assert buf.nbytes == 2
        buf.append("z")
        assert buf.nbytes == 3

    @pytest.mark.parametrize("layer", ["ir", "asm"])
    def test_trap_identical_across_modes(self, print_built, layer):
        sigs = [
            _trap_sig(sim.run())
            for sim in _sims(print_built, layer, output_budget=16)
        ]
        assert sigs[0] == sigs[1]
        assert sigs[0][0] == "trap"
        assert sigs[0][1] == "output-budget"


class TestCallDepthBudget:
    @pytest.mark.parametrize("layer", ["ir", "asm"])
    def test_trap_identical_across_modes(self, recurse_built, layer):
        sigs = [
            _trap_sig(sim.run())
            for sim in _sims(recurse_built, layer, max_call_depth=4)
        ]
        assert sigs[0] == sigs[1]
        assert sigs[0][0] == "trap"
        assert sigs[0][1] == "stack-overflow"

    @pytest.mark.parametrize("layer", ["ir", "asm"])
    def test_default_depth_budget_is_inert(self, recurse_built, layer):
        # the default budget sits above what the simulated stack admits,
        # so enabling containment changes nothing for legal programs
        assert DEFAULT_MAX_CALL_DEPTH == 1 << 16
        for sim in _sims(recurse_built, layer):
            res = sim.run()
            assert res.status is RunStatus.OK
            assert res.output == "30\n"


class TestMemBudget:
    def test_memory_construction_trap(self):
        with pytest.raises(SimTrap) as exc:
            Memory(global_size=64, heap_size=1 << 20,
                   stack_size=1 << 19, mem_budget=1 << 10)
        assert exc.value.kind == "mem-budget"

    def test_simulator_constructor_enforces_budget(self, loop_built):
        with pytest.raises(SimTrap) as exc:
            IRInterpreter(loop_built.module, layout=loop_built.layout,
                          mem_budget=1 << 10)
        assert exc.value.kind == "mem-budget"

    def test_within_budget_runs(self, loop_built):
        res = IRInterpreter(loop_built.module, layout=loop_built.layout,
                            mem_budget=1 << 28).run()
        assert res.status is RunStatus.OK


class TestContainSwitch:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_CONTAIN", raising=False)
        assert containment_enabled(None) is True

    def test_env_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTAIN", "0")
        assert containment_enabled(None) is False
        # an explicit flag always wins over the environment
        assert containment_enabled(True) is True

    def test_uncontained_matches_contained_results(self, loop_built):
        golden = [s.run() for s in _sims(loop_built, "ir", contain=True)]
        raw = [s.run() for s in _sims(loop_built, "ir", contain=False)]
        assert _trap_sig(golden[0]) == _trap_sig(raw[0])
        assert _trap_sig(golden[1]) == _trap_sig(raw[1])


# ---------------------------------------------------------------------------
# host-escape boundary
# ---------------------------------------------------------------------------

class TestHostEscapeBoundary:
    def test_result_shape(self):
        res = host_escape_result(RuntimeError("boom"), layer="asm",
                                 step=7, index=3)
        assert res.status is RunStatus.TRAP
        assert res.trap_kind == HOST_ESCAPE
        info = res.extra["host_escape"]
        assert info["exc_type"] == "RuntimeError"
        assert info["layer"] == "asm"

    def test_ir_injected_exception_is_contained(self, loop_built,
                                                monkeypatch):
        def bomb(self, frame, inst, op):
            raise RuntimeError("host bug under fault")

        monkeypatch.setattr(IRInterpreter, "_compute", bomb)
        res = IRInterpreter(loop_built.module, layout=loop_built.layout,
                            dispatch="naive").run(inject_index=0)
        assert res.status is RunStatus.TRAP
        assert res.trap_kind == HOST_ESCAPE
        assert res.extra["host_escape"]["exc_type"] == "RuntimeError"
        assert res.extra["host_escape"]["layer"] == "ir"

    def test_ir_golden_exception_still_raises(self, loop_built,
                                              monkeypatch):
        def bomb(self, frame, inst, op):
            raise RuntimeError("toolchain bug")

        monkeypatch.setattr(IRInterpreter, "_compute", bomb)
        with pytest.raises(RuntimeError):
            IRInterpreter(loop_built.module, layout=loop_built.layout,
                          dispatch="naive").run()

    def test_ir_uncontained_exception_escapes(self, loop_built,
                                              monkeypatch):
        def bomb(self, frame, inst, op):
            raise RuntimeError("unguarded")

        monkeypatch.setattr(IRInterpreter, "_compute", bomb)
        with pytest.raises(RuntimeError):
            IRInterpreter(loop_built.module, layout=loop_built.layout,
                          dispatch="naive", contain=False,
                          ).run(inject_index=0)

    def test_asm_injected_exception_is_contained(self, loop_built,
                                                 monkeypatch):
        def bomb(self, index):
            raise RuntimeError("host bug under fault")

        # _gpr_dest runs only when the naive loop applies an injection
        monkeypatch.setattr(AsmMachine, "_gpr_dest", bomb)
        res = AsmMachine(loop_built.compiled, loop_built.layout,
                         dispatch="naive").run(inject_index=0)
        assert res.status is RunStatus.TRAP
        assert res.trap_kind == HOST_ESCAPE
        assert res.extra["host_escape"]["layer"] == "asm"

    def test_setup_errors_not_misclassified(self, loop_built):
        # errors before the execution loop arms (e.g. a bad entry
        # symbol) are toolchain bugs, never host-escape DUEs
        from repro.errors import IRError

        with pytest.raises(IRError):
            IRInterpreter(loop_built.module, layout=loop_built.layout,
                          ).run(entry="nonexistent", inject_index=0)


# ---------------------------------------------------------------------------
# trap-kind rename back-compat
# ---------------------------------------------------------------------------

class TestStepBudgetAlias:
    def test_canonical(self):
        assert canonical_trap_kind("timeout") == "step-budget"
        assert canonical_trap_kind("segfault") == "segfault"
        assert canonical_trap_kind(None) is None

    def test_classify_is_pure(self):
        # classify_outcome must understand the alias without mutating
        # the caller's result (a shared ExecResult may be classified
        # against several goldens)
        res = ExecResult(status=RunStatus.TRAP, output="", dyn_total=5,
                         dyn_injectable=2, trap_kind="timeout")
        assert classify_outcome(res, "x") is Outcome.DUE
        assert res.trap_kind == "timeout"

    def test_record_from_row_canonicalizes(self):
        row = (3, 17, "trap", "", None, None, None, None, "timeout")
        outcome, rec = record_from_row(row, "golden")
        assert outcome is Outcome.DUE
        assert rec.trap_kind == "step-budget"


# ---------------------------------------------------------------------------
# resilience layer: per-sample exhaustion guard
# ---------------------------------------------------------------------------

class TestResilienceGuard:
    @pytest.mark.parametrize("exc", [MemoryError, RecursionError])
    def test_worker_side_exhaustion_is_a_trap_row(self, loop_built,
                                                  monkeypatch, exc):
        def bomb(self, *a, **kw):
            raise exc("resource exhausted")

        monkeypatch.setattr(IRInterpreter, "run", bomb)
        row = _execute_sample(loop_built, "ir", 0, 0, 1000)
        assert row[2] == "trap"
        assert row[-3] == HOST_ESCAPE
        assert row[-2] == "seu"
        assert row[-1] == 0
        outcome, rec = record_from_row(row, "golden")
        assert outcome is Outcome.DUE
        assert rec.trap_kind == HOST_ESCAPE


# ---------------------------------------------------------------------------
# the chaos fuzzer itself
# ---------------------------------------------------------------------------

class TestChaosSweep:
    def test_smoke_sweep_holds_invariant(self):
        report = chaos_sweep(benchmarks=["crc32", "pathfinder"],
                             scale="tiny", n=6, seed=7)
        assert report.ok
        # 2 benchmarks x 2 layers x 3 fault models x 3 dispatch tiers
        # x 6 injections
        assert report.injections == 2 * 2 * 3 * 3 * 6
        assert report.classified == report.injections
        assert not report.escapes and not report.divergences
        assert sum(report.outcome_counts.values()) == report.classified
        doc = report.to_doc()
        assert doc["schema"] == CHAOS_SCHEMA
        assert doc["ok"] is True
        assert "HELD" in render_chaos(report)

    def test_sweep_is_deterministic(self):
        a = chaos_sweep(benchmarks=["crc32"], scale="tiny", n=5, seed=3)
        b = chaos_sweep(benchmarks=["crc32"], scale="tiny", n=5, seed=3)
        assert a.to_doc() == b.to_doc()

    def test_fuzzer_finds_unguarded_path(self, monkeypatch):
        # deliberately un-guard the IR flip: with containment off the
        # fuzzer must FIND the escape (it passing here proves the sweep
        # is not vacuous) and report a working minimized reproducer
        def bomb(value, ty, bit):
            raise RuntimeError("chaos-unguarded flip")

        monkeypatch.setattr(interp_mod, "_flip_value", bomb)
        report = chaos_sweep(benchmarks=["crc32"], scale="tiny", n=8,
                             seed=7, layers=("ir",), contain=False)
        assert report.escapes
        assert not report.ok
        esc = report.escapes[0]
        assert esc.exc_type == "RuntimeError"
        assert "VIOLATED" in render_chaos(report)
        assert str(esc.index) in esc.reproducer()

        # the reproducer replays: same injection, same escape
        built = build_from_source(
            __import__("repro.benchsuite.registry",
                       fromlist=["load_source"]).load_source(
                           esc.benchmark, "tiny"),
            name=esc.benchmark)
        sim = IRInterpreter(built.module, layout=built.layout,
                            dispatch=esc.dispatch, contain=False)
        with pytest.raises(RuntimeError):
            sim.run(inject_index=esc.index, inject_bit=esc.bit)

    def test_boundary_contains_the_same_faults(self, monkeypatch):
        # identical fault, containment on: zero escapes, everything
        # classified as a host-escape DUE, all dispatch tiers agree
        def bomb(value, ty, bit):
            raise RuntimeError("chaos-unguarded flip")

        monkeypatch.setattr(interp_mod, "_flip_value", bomb)
        report = chaos_sweep(benchmarks=["crc32"], scale="tiny", n=8,
                             seed=7, layers=("ir",), contain=True)
        assert report.ok
        assert not report.escapes and not report.divergences
        assert report.trap_counts.get(HOST_ESCAPE, 0) > 0

    def test_fuzzer_finds_unguarded_path_in_generated_code(
            self, monkeypatch):
        # generated code routes flips through the same late
        # module-attribute lookup as the step loops, so the fuzzer must
        # find an unguarded fault *inside exec-compiled source* too —
        # this proves the codegen sweep is not vacuous
        def bomb(value, ty, bit):
            raise RuntimeError("chaos-unguarded flip")

        monkeypatch.setattr(interp_mod, "_flip_value", bomb)
        report = chaos_sweep(benchmarks=["crc32"], scale="tiny", n=8,
                             seed=7, layers=("ir",),
                             dispatches=("codegen",), contain=False)
        assert report.escapes and not report.ok
        assert all(e.dispatch == "codegen" for e in report.escapes)
        assert all(e.exc_type == "RuntimeError" for e in report.escapes)

    def test_codegen_faults_cannot_escape_past_boundary(self,
                                                        monkeypatch):
        # the same faults inside generated code, containment on: zero
        # escapes — every one is caught at the host-escape boundary and
        # classified as a DUE, bit-identical to the naive tier
        def bomb(value, ty, bit):
            raise RuntimeError("chaos-unguarded flip")

        monkeypatch.setattr(interp_mod, "_flip_value", bomb)
        report = chaos_sweep(benchmarks=["crc32"], scale="tiny", n=8,
                             seed=7, layers=("ir",),
                             dispatches=("naive", "codegen"),
                             contain=True)
        assert report.ok
        assert not report.escapes and not report.divergences
        assert report.trap_counts.get(HOST_ESCAPE, 0) > 0
