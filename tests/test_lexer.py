"""Tests for the MiniC lexer."""

import pytest

from repro.errors import ParseError
from repro.frontend.lexer import Token, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]  # drop EOF


class TestBasics:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "eof"

    def test_keywords_vs_identifiers(self):
        assert kinds("int x") == [("keyword", "int"), ("ident", "x")]
        assert kinds("integer") == [("ident", "integer")]

    def test_numbers(self):
        assert kinds("42") == [("int_lit", "42")]
        assert kinds("0x1F") == [("int_lit", "0x1F")]
        assert kinds("3.5") == [("float_lit", "3.5")]
        assert kinds("1e3") == [("float_lit", "1e3")]
        assert kinds("2.5e-2") == [("float_lit", "2.5e-2")]
        assert kinds("7.") == [("float_lit", "7.")]

    def test_member_access_not_float(self):
        # "1.x" lexes 1. as float then ident — MiniC has no members, the
        # parser rejects it; the lexer just splits tokens
        toks = kinds("1.5x")
        assert toks[0] == ("float_lit", "1.5")

    def test_operators_maximal_munch(self):
        assert kinds("<<=") == [("op", "<<=")]
        assert kinds("<<") == [("op", "<<")]
        assert kinds("<= <") == [("op", "<="), ("op", "<")]
        assert kinds("a+++b")[1] == ("op", "++")

    def test_char_literal(self):
        assert kinds("'a'") == [("int_lit", str(ord("a")))]
        assert kinds(r"'\n'") == [("int_lit", "10")]

    def test_string_literal(self):
        toks = tokenize('"hi\\n"')
        assert toks[0].kind == "string" and toks[0].text == "hi\n"


class TestComments:
    def test_line_comment(self):
        assert kinds("1 // comment\n2") == [("int_lit", "1"), ("int_lit", "2")]

    def test_block_comment(self):
        assert kinds("1 /* x\ny */ 2") == [("int_lit", "1"), ("int_lit", "2")]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("/* never ends")


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected"):
            tokenize("a $ b")

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize('"oops')

    def test_bad_escape(self):
        with pytest.raises(ParseError, match="escape"):
            tokenize(r'"\q"')
