"""Tests for fault forensics (injection replay + narration)."""

import pytest

from repro.analysis.forensics import (
    FaultStory,
    explain_injection,
    first_divergence,
)
from repro.analysis.rootcause import Penetration
from repro.fi.campaign import CampaignConfig, run_asm_campaign
from repro.fi.outcomes import Outcome
from repro.pipeline import build


class TestFirstDivergence:
    def test_equal(self):
        assert first_divergence("a\nb\n", "a\nb\n") is None

    def test_first_line(self):
        assert first_divergence("a\nb", "x\nb") == 0

    def test_middle(self):
        assert first_divergence("a\nb\nc", "a\nx\nc") == 1

    def test_truncated(self):
        assert first_divergence("a\nb\nc", "a\nb") == 2


@pytest.fixture(scope="module")
def protected_campaign():
    built = build("pathfinder", scale="tiny", level=100)
    campaign = run_asm_campaign(
        built.compiled, built.layout, CampaignConfig(n_campaigns=250, seed=3)
    )
    return built, campaign


class TestExplainInjection:
    def test_sdc_story_complete(self, protected_campaign):
        built, campaign = protected_campaign
        sdcs = campaign.sdc_records()
        assert sdcs, "need at least one escape to explain"
        story = explain_injection(
            sdcs[0], built.module, built.layout,
            compiled=built.compiled, asm=built.asm,
            dup_info=built.protection.dup_info,
        )
        assert story.outcome is Outcome.SDC
        assert story.site != "<not injected>"
        assert story.penetration is not None
        assert story.diverged_at_line is not None
        text = story.narrate()
        assert "SDC" in text
        assert "root cause" in text
        assert "diverges" in text

    def test_replay_matches_campaign_outcome(self, protected_campaign):
        built, campaign = protected_campaign
        for record in campaign.records[:30]:
            story = explain_injection(
                record, built.module, built.layout,
                compiled=built.compiled, asm=built.asm,
                dup_info=built.protection.dup_info,
            )
            assert story.outcome is record.outcome

    def test_due_story(self, protected_campaign):
        built, campaign = protected_campaign
        dues = [r for r in campaign.records if r.outcome is Outcome.DUE]
        if not dues:
            pytest.skip("no DUE in this campaign")
        story = explain_injection(
            dues[0], built.module, built.layout, compiled=built.compiled,
        )
        assert story.outcome is Outcome.DUE
        assert story.trap_kind
        assert "trap" in story.narrate()

    def test_ir_layer_story(self):
        built = build("crc32", scale="tiny")
        from repro.fi.campaign import run_ir_campaign

        campaign = run_ir_campaign(
            built.module, CampaignConfig(n_campaigns=80, seed=4),
            built.layout,
        )
        record = campaign.records[0]
        story = explain_injection(
            record, built.module, built.layout, layer="ir",
        )
        assert story.layer == "ir"
        assert story.site

    def test_asm_needs_compiled(self, protected_campaign):
        built, campaign = protected_campaign
        with pytest.raises(ValueError):
            explain_injection(
                campaign.records[0], built.module, built.layout
            )
