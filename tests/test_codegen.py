"""Tests for MiniC -> IR code generation (golden-output based)."""

import pytest

from repro.execresult import RunStatus
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import run_ir
from repro.ir.instructions import Alloca, CondBr, ICmp
from repro.ir.verifier import verify_module


def out(src: str) -> str:
    return run_ir(compile_source(src)).output


class TestCodegenGolden:
    def test_nested_loops(self):
        src = """
int main() {
    int total = 0;
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j <= i; j++) { total += i * j; }
    }
    print(total);
    return 0;
}
"""
        # sum over i of i * (0+..+i) = 0 + 1 + 2*3 + 3*6 = 25
        assert out(src) == "25\n"

    def test_while_with_complex_condition(self):
        src = """
int main() {
    int i = 0;
    int j = 10;
    while (i < j && j > 3) { i++; j--; }
    print(i); print(j);
    return 0;
}
"""
        assert out(src) == "5\n5\n"

    def test_short_circuit_effects(self):
        # the RHS of && must not evaluate when LHS is false
        src = """
int calls = 0;
int bump() { calls++; return 1; }
int main() {
    int r = (0 && bump());
    print(r); print(calls);
    r = (1 || bump());
    print(r); print(calls);
    r = (1 && bump());
    print(r); print(calls);
    return 0;
}
"""
        assert out(src) == "0\n0\n1\n0\n1\n1\n"

    def test_comparison_as_value(self):
        assert out("int main() { int x = (3 < 5) + (2 == 2); print(x); return 0; }") == "2\n"

    def test_float_int_conversions(self):
        src = """
int main() {
    float f = 7.9;
    int i = int(f);
    print(i);
    print(float(i) / 2.0);
    return 0;
}
"""
        assert out(src) == "7\n3.5\n"

    def test_array_passing_and_mutation(self):
        src = """
void double_all(int a[], int n) {
    for (int i = 0; i < n; i++) { a[i] *= 2; }
}
int data[3] = {1, 2, 3};
int main() {
    double_all(data, 3);
    print(data[0] + data[1] + data[2]);
    return 0;
}
"""
        assert out(src) == "12\n"

    def test_local_array_passed(self):
        src = """
int sum(int a[], int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += a[i]; }
    return s;
}
int main() {
    int local[4] = {10, 20, 30, 40};
    print(sum(local, 4));
    return 0;
}
"""
        assert out(src) == "100\n"

    def test_float_arrays(self):
        src = """
float xs[3] = {0.5, 1.5, 2.5};
int main() {
    float s = 0.0;
    for (int i = 0; i < 3; i++) { s += xs[i]; }
    print(s);
    return 0;
}
"""
        assert out(src) == "4.5\n"

    def test_early_return_and_dead_code(self):
        src = """
int f(int x) {
    if (x > 0) { return 1; }
    return -1;
    print(999);
}
int main() { print(f(5)); print(f(-5)); return 0; }
"""
        assert out(src) == "1\n-1\n"

    def test_implicit_return_value(self):
        # falling off the end of an int function returns 0 (C-ish)
        src = "int f() { } int main() { print(f()); return 0; }"
        assert out(src) == "0\n"

    def test_global_scalar_init(self):
        src = """
int g = 41;
float h = 2.5;
int main() { print(g + 1); print(h * 2.0); return 0; }
"""
        assert out(src) == "42\n5\n"

    def test_unary_minus_floats(self):
        assert out("int main() { float f = -2.5; print(-f); return 0; }") == "2.5\n"

    def test_deeply_nested_scopes(self):
        src = """
int main() {
    int x = 1;
    { int y = 2; { int z = 3; print(x + y + z); } }
    return 0;
}
"""
        assert out(src) == "6\n"


class TestCodegenStructure:
    def test_modules_verify(self, sink_module):
        verify_module(sink_module)

    def test_allocas_live_in_entry(self, sink_module):
        for fn in sink_module.functions.values():
            for block in fn.blocks:
                for inst in block.instructions:
                    if isinstance(inst, Alloca):
                        assert block is fn.entry

    def test_icmp_feeds_condbr_adjacently(self):
        # the -O0 property branch lowering depends on
        src = "int main() { int x = 3; if (x < 5) { print(1); } return 0; }"
        module = compile_source(src)
        found = False
        for fn in module.functions.values():
            for block in fn.blocks:
                term = block.terminator
                if isinstance(term, CondBr) and isinstance(
                    term.condition, ICmp
                ):
                    idx = block.index_of(term)
                    if idx > 0 and block.instructions[idx - 1] is term.condition:
                        found = True
        assert found

    def test_compilation_is_deterministic(self):
        src = "int main() { int x = 1; print(x + 2); return 0; }"
        a = compile_source(src)
        b = compile_source(src)
        ia = [(i.iid, i.opcode) for i in a.instructions()]
        ib = [(i.iid, i.opcode) for i in b.instructions()]
        assert ia == ib

    def test_every_use_is_a_fresh_load(self):
        # -O0 discipline: three uses of x produce three loads
        src = "int main() { int x = 2; print(x + x + x); return 0; }"
        module = compile_source(src)
        loads = [i for i in module.instructions() if i.opcode == "load"]
        assert len(loads) == 3
