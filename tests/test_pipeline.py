"""Tests for the high-level build pipeline."""

import pytest

from repro.execresult import RunStatus
from repro.pipeline import build, build_from_source


class TestBuild:
    def test_unprotected_build(self):
        built = build("crc32", scale="tiny")
        assert not built.is_protected
        ir = built.run_ir()
        asm = built.run_asm()
        assert ir.status is RunStatus.OK
        assert asm.output == ir.output

    def test_protected_build_full(self):
        built = build("crc32", scale="tiny", level=100)
        assert built.is_protected
        assert built.protection.level == 100
        assert built.protection.plan is None  # full needs no planner
        assert built.protection.dup_info.checker_count() > 0

    def test_protected_build_partial_uses_planner(self):
        built = build("crc32", scale="tiny", level=50,
                      profile_campaigns=80)
        assert built.protection.plan is not None
        assert built.protection.plan.level == 50
        assert built.protection.plan.spent <= built.protection.plan.budget

    def test_flowery_build(self):
        built = build("crc32", scale="tiny", level=100, flowery=True)
        assert built.protection.flowery
        assert built.protection.flowery_stats["postponed_branch"] > 0
        assert built.run_asm().status is RunStatus.OK

    def test_protection_preserves_output(self):
        plain = build("pathfinder", scale="tiny")
        protected = build("pathfinder", scale="tiny", level=100,
                          flowery=True)
        assert protected.run_asm().output == plain.run_asm().output

    def test_compare_cse_knob(self):
        with_cse = build("crc32", scale="tiny", level=100)
        without = build("crc32", scale="tiny", level=100,
                        compare_cse=False)
        assert len(without.asm.folded_checkers) == 0
        assert len(with_cse.asm.folded_checkers) >= 0

    def test_build_from_source(self):
        built = build_from_source(
            "int main() { print(41 + 1); return 0; }", "answer"
        )
        assert built.run_ir().output == "42\n"
        assert built.name == "answer"

    def test_checker_sync_map(self):
        built = build("crc32", scale="tiny", level=100)
        sync_map = built.protection.checker_sync_map
        assert sync_map
        for sync, checkers in sync_map.items():
            assert checkers
