"""Fault-model taxonomy and control-flow checking tests.

Covers the three-way scenario matrix introduced for the cross-layer
study: loud validation of fault-model/dispatch names, the CFC pass
(golden-clean, detects control-flow faults, composes with duplication,
weakenings behave), cross-dispatch bit-identity under SET and CF
faults, journal schema compatibility (legacy rows, resume), lockstep
edge forensics, and the multi-model chaos sweep.
"""

import dataclasses
import json

import pytest

from repro.errors import CampaignError, IRError
from repro.execresult import RunStatus
from repro.faultmodel import (
    CF_BIT_RANGE,
    FAULT_MODELS,
    fault_bit_range,
    validate_fault_model,
)
from repro.fi.bench import campaign_signature
from repro.fi.campaign import (
    CampaignConfig,
    run_asm_campaign,
    run_ir_campaign,
)
from repro.fi.chaos import chaos_sweep
from repro.fi.engine import engine_dispatch, run_injection_suite
from repro.fi.outcomes import Outcome
from repro.fi.parallel import run_parallel_campaign
from repro.fi.resilience import (
    ROW_FIELDS,
    InjectionJournal,
    WorkSpec,
    campaign_key,
    record_from_row,
)
from repro.interp.interpreter import IRInterpreter
from repro.machine.machine import AsmMachine
from repro.pipeline import build_from_source
from repro.protection.cfc import CFC_WEAKNESSES, SIG_GLOBAL, apply_cfc
from repro.trace import lockstep_built

SRC = """
int data[8] = {4, 2, 7, 1, 9, 3, 8, 6};
int acc[1] = {0};
int step(int s, int v) {
    if (v > 4) { return s + v * 3; }
    return s - (v >> 1);
}
int main() {
    for (int i = 0; i < 8; i++) {
        acc[0] = step(acc[0], data[i]);
        if ((acc[0] & 3) == 0) { acc[0] = acc[0] + 1; }
    }
    print(acc[0]);
    return 0;
}
"""


@pytest.fixture(scope="module")
def built():
    return build_from_source(SRC, name="fm_plain")


@pytest.fixture(scope="module")
def built_cfc():
    return build_from_source(SRC, name="fm_cfc", cfc=True)


@pytest.fixture(scope="module")
def built_dup_cfc():
    return build_from_source(SRC, name="fm_dupcfc", level=100, cfc=True)


def _res_sig(res):
    extra = {k: v for k, v in res.extra.items() if k != "trace"}
    return (res.status.value, res.output, res.dyn_total,
            res.dyn_injectable, res.trap_kind, res.injected,
            res.injected_iid, extra)


def _sim(built, layer, dispatch, fault_model, max_steps=200_000):
    if layer == "ir":
        return IRInterpreter(built.module, layout=built.layout,
                             dispatch=dispatch, max_steps=max_steps,
                             fault_model=fault_model)
    return AsmMachine(built.compiled, built.layout, dispatch=dispatch,
                      max_steps=max_steps, fault_model=fault_model)


class TestValidation:
    """Satellite: typos raise loudly instead of silently defaulting."""

    def test_none_means_seu(self):
        assert validate_fault_model(None) == "seu"

    @pytest.mark.parametrize("fm", FAULT_MODELS)
    def test_members_pass_through(self, fm):
        assert validate_fault_model(fm) == fm

    @pytest.mark.parametrize("bad", ["set ", "CF", "bitflip", "seu2", ""])
    def test_typos_raise(self, bad):
        with pytest.raises(CampaignError, match="unknown fault model"):
            validate_fault_model(bad)

    def test_error_names_valid_models(self):
        with pytest.raises(CampaignError, match="'seu', 'set', 'cf'"):
            validate_fault_model("sue")

    def test_campaigns_validate(self, built):
        cfg = CampaignConfig(n_campaigns=4, seed=1)
        with pytest.raises(CampaignError, match="unknown fault model"):
            run_ir_campaign(built.module, cfg, built.layout,
                            fault_model="transient")
        with pytest.raises(CampaignError, match="unknown fault model"):
            run_asm_campaign(built.compiled, built.layout, cfg,
                             fault_model="cf ")

    def test_dispatch_typo_raises(self):
        with pytest.raises(CampaignError, match="codgen"):
            engine_dispatch("codgen")

    def test_dispatch_env_typo_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH", "decodedd")
        with pytest.raises(CampaignError, match="decodedd"):
            engine_dispatch()

    def test_injection_suite_rejects_bad_dispatch(self, built):
        with pytest.raises(CampaignError):
            run_injection_suite(
                "ir", [(0, 0, 0)], 10_000, module=built.module,
                layout=built.layout, emit=lambda t, r: None,
                dispatch="naiive",
            )

    def test_bit_ranges(self):
        assert fault_bit_range("seu") == 64
        assert fault_bit_range("set") == 64
        assert fault_bit_range("cf") == CF_BIT_RANGE


class TestCFCPass:
    """Signature-based control-flow checking: semantics preserved,
    control-flow faults detected, weakenings weaken."""

    def test_golden_runs_clean_both_layers(self, built, built_cfc):
        ref = IRInterpreter(built.module, layout=built.layout).run()
        ir = IRInterpreter(built_cfc.module, layout=built_cfc.layout).run()
        asm = AsmMachine(built_cfc.compiled, built_cfc.layout).run()
        assert ir.status is RunStatus.OK
        assert asm.status is RunStatus.OK
        assert ir.output == ref.output
        assert asm.output == ref.output

    def test_build_records_cfc_info(self, built_cfc):
        info = built_cfc.cfc_info
        assert info is not None
        assert info.checks > 0 and info.edge_stores > 0
        assert SIG_GLOBAL in built_cfc.module.globals
        doc = info.to_doc()
        assert doc["checks"] == info.checks

    def test_reapplication_rejected(self, built_cfc):
        with pytest.raises(IRError, match="already"):
            apply_cfc(built_cfc.module)

    def test_unknown_weakness_rejected(self, built):
        with pytest.raises(IRError, match="weakness"):
            build_from_source(SRC, name="fm_badweak", cfc=True,
                              cfc_weakness="no-such-weakness")

    def test_cfc_detects_cf_faults_unprotected_does_not(self, built,
                                                        built_cfc):
        cfg = CampaignConfig(n_campaigns=60, seed=13)
        plain = run_ir_campaign(built.module, cfg, built.layout,
                                fault_model="cf")
        cfc = run_ir_campaign(built_cfc.module, cfg, built_cfc.layout,
                              fault_model="cf")
        assert plain.counts.get(Outcome.DETECTED, 0) == 0
        assert cfc.counts.get(Outcome.DETECTED, 0) > 0

    def test_composes_with_duplication(self, built_dup_cfc):
        assert built_dup_cfc.protection is not None
        assert built_dup_cfc.cfc_info is not None
        cfg = CampaignConfig(n_campaigns=60, seed=13)
        for fm in FAULT_MODELS:
            res = run_asm_campaign(built_dup_cfc.compiled,
                                   built_dup_cfc.layout, cfg,
                                   fault_model=fm)
            assert res.counts.get(Outcome.DETECTED, 0) > 0, fm

    def test_dropped_update_false_detects_on_golden(self):
        weak = build_from_source(SRC, name="fm_drop", cfc=True,
                                 cfc_weakness="dropped-update")
        res = IRInterpreter(weak.module, layout=weak.layout).run()
        assert res.status is not RunStatus.OK

    def test_constant_signature_is_golden_clean_but_blind(self, built_cfc):
        weak = build_from_source(SRC, name="fm_const", cfc=True,
                                 cfc_weakness="constant-signature")
        assert IRInterpreter(weak.module,
                             layout=weak.layout).run().status is RunStatus.OK
        cfg = CampaignConfig(n_campaigns=60, seed=13)
        strong = run_ir_campaign(built_cfc.module, cfg, built_cfc.layout,
                                 fault_model="cf")
        blind = run_ir_campaign(weak.module, cfg, weak.layout,
                                fault_model="cf")
        assert blind.counts.get(Outcome.DETECTED, 0) < \
            strong.counts.get(Outcome.DETECTED, 0)

    def test_weakness_catalog_is_closed(self):
        assert set(CFC_WEAKNESSES) == {
            "dropped-update", "unchecked-backedge", "constant-signature"}


class TestTierEquivalence:
    """SET and CF faults must be bit-identical across all three
    dispatch tiers, with naive as the oracle — same guarantee the
    equivalence suite proves for SEU."""

    @pytest.mark.parametrize("fault_model", ["set", "cf"])
    @pytest.mark.parametrize("layer", ["ir", "asm"])
    def test_injections_identical_across_tiers(self, built_dup_cfc,
                                               layer, fault_model):
        golden = _sim(built_dup_cfc, layer, "naive", fault_model).run()
        n_inj = golden.dyn_injectable
        assert n_inj > 0
        sites = sorted({0, n_inj // 3, n_inj // 2, n_inj - 1})
        bits = (0, 17, 63) if fault_model == "set" else (1, 977, 123_456)
        for idx in sites:
            for bit in bits:
                runs = [
                    _sim(built_dup_cfc, layer, d, fault_model).run(
                        inject_index=idx, inject_bit=bit)
                    for d in ("naive", "decoded", "codegen")
                ]
                assert _res_sig(runs[0]) == _res_sig(runs[1]), \
                    f"{layer}/{fault_model} decoded idx={idx} bit={bit}"
                assert _res_sig(runs[0]) == _res_sig(runs[2]), \
                    f"{layer}/{fault_model} codegen idx={idx} bit={bit}"

    def test_cf_injectable_universe_is_smaller(self, built):
        seu = _sim(built, "ir", "naive", "seu").run()
        cf = _sim(built, "ir", "naive", "cf").run()
        assert 0 < cf.dyn_injectable < seu.dyn_injectable
        assert cf.dyn_total == seu.dyn_total


class TestJournalCompat:
    """Rows grow a fault_model column; legacy journals must still load
    and resume bit-identically."""

    def test_key_ignores_default_fault_model(self):
        a = WorkSpec(source=SRC, layer="ir")
        b = WorkSpec(source=SRC, layer="ir", fault_model="seu", cfc=False)
        cfg = CampaignConfig(n_campaigns=8, seed=2)
        assert campaign_key(a, cfg) == campaign_key(b, cfg)
        c = WorkSpec(source=SRC, layer="ir", fault_model="cf")
        d = WorkSpec(source=SRC, layer="ir", cfc=True)
        assert campaign_key(c, cfg) != campaign_key(a, cfg)
        assert campaign_key(d, cfg) != campaign_key(a, cfg)

    def test_rows_carry_fault_model(self, tmp_path):
        spec = WorkSpec(source=SRC, layer="ir", fault_model="cf", cfc=True)
        cfg = CampaignConfig(n_campaigns=8, seed=2)
        path = tmp_path / "cf.jsonl"
        run_parallel_campaign(spec, cfg, workers=1,
                              journal_path=str(path))
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        body = [r for r in rows if r["ev"] == "row"]
        assert len(body) == 8
        for r in body:
            assert len(r["row"]) == len(ROW_FIELDS)
            assert r["row"][-2] == "cf"      # fault_model precedes pruned

    def test_legacy_nine_field_rows_resume_identically(self, tmp_path):
        spec = WorkSpec(source=SRC, layer="asm")
        cfg = CampaignConfig(n_campaigns=10, seed=6)
        path = tmp_path / "j.jsonl"
        clean = run_parallel_campaign(spec, cfg, workers=1,
                                      journal_path=str(path))
        # rewrite the journal as a v1 file: strip the fault_model and
        # pruned columns (v1 rows predate both)
        lines = []
        for line in path.read_text().splitlines():
            doc = json.loads(line)
            doc.pop("c", None)     # v1 journals predate per-row CRCs
            if doc["ev"] == "header":
                doc["version"] = 1
            else:
                assert doc["row"][-2:] == ["seu", 0]
                doc["row"] = doc["row"][:-2]
            lines.append(json.dumps(doc))
        legacy = tmp_path / "legacy.jsonl"
        legacy.write_text("\n".join(lines[:6]) + "\n")   # partial: resumes
        resumed = run_parallel_campaign(spec, cfg, workers=1,
                                        journal_path=str(legacy))
        assert campaign_signature(resumed) == campaign_signature(clean)

    def test_journal_reader_pads_legacy_rows(self, tmp_path):
        spec = WorkSpec(source=SRC, layer="ir")
        cfg = CampaignConfig(n_campaigns=6, seed=3)
        path = tmp_path / "j.jsonl"
        run_parallel_campaign(spec, cfg, workers=1, journal_path=str(path))
        _, completed = InjectionJournal._read(str(path))
        trimmed = {i: row[:-1] for i, row in completed.items()}
        legacy = tmp_path / "legacy.jsonl"
        with open(legacy, "w") as fh:
            fh.write(json.dumps({"ev": "header", "version": 1,
                                 "key": campaign_key(spec, cfg)}) + "\n")
            for i, row in trimmed.items():
                fh.write(json.dumps({"ev": "row", "i": i,
                                     "row": list(row)}) + "\n")
        _, reread = InjectionJournal._read(str(legacy))
        assert reread == completed     # padded back to "seu"

    def test_record_from_row_pads_legacy(self, tmp_path):
        spec = WorkSpec(source=SRC, layer="ir")
        cfg = CampaignConfig(n_campaigns=6, seed=3)
        path = tmp_path / "j.jsonl"
        res = run_parallel_campaign(spec, cfg, workers=1,
                                    journal_path=str(path))
        _, completed = InjectionJournal._read(str(path))
        for i, row in completed.items():
            _, new = record_from_row(row, res.golden_output)
            _, old = record_from_row(row[:-1], res.golden_output)
            assert dataclasses.astuple(new) == dataclasses.astuple(old)
            assert new.fault_model == "seu"

    def test_cf_resume_is_bit_identical(self, tmp_path):
        spec = WorkSpec(source=SRC, layer="ir", fault_model="cf")
        cfg = CampaignConfig(n_campaigns=10, seed=4)
        full = tmp_path / "full.jsonl"
        clean = run_parallel_campaign(spec, cfg, workers=1,
                                      journal_path=str(full))
        lines = full.read_text().splitlines(keepends=True)
        torn = tmp_path / "torn.jsonl"
        torn.write_text("".join(lines[:5]) + lines[5][:8])
        resumed = run_parallel_campaign(spec, cfg, workers=1,
                                        journal_path=str(torn))
        assert campaign_signature(resumed) == campaign_signature(clean)
        recs = [dataclasses.astuple(r) for r in resumed.records]
        assert recs == [dataclasses.astuple(r) for r in clean.records]
        assert all(r.fault_model == "cf" for r in resumed.records)


class TestJournalV3Compat:
    """Rows grow a ``pruned`` column (journal v3); v2 journals without
    it must still load and resume bit-identically — the exact mirror of
    the v1 -> v2 fault-model-column pattern above."""

    def test_key_ignores_default_prune_flags(self):
        spec = WorkSpec(source=SRC, layer="ir")
        plain = CampaignConfig(n_campaigns=8, seed=2)
        explicit = CampaignConfig(n_campaigns=8, seed=2,
                                  prune=False, stratify=False)
        assert campaign_key(spec, plain) == campaign_key(spec, explicit)
        pruned = CampaignConfig(n_campaigns=8, seed=2, prune=True)
        assert campaign_key(spec, pruned) != campaign_key(spec, plain)

    def test_rows_carry_pruned_flag(self, tmp_path):
        spec = WorkSpec(source=SRC, layer="asm", level=100)
        cfg = CampaignConfig(n_campaigns=24, seed=5, prune=True)
        path = tmp_path / "p.jsonl"
        res = run_parallel_campaign(spec, cfg, workers=1,
                                    journal_path=str(path))
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        header = rows[0]
        assert header["ev"] == "header" and header["version"] == 3
        body = [r for r in rows if r["ev"] == "row"]
        assert len(body) == 24
        assert all(len(r["row"]) == len(ROW_FIELDS) for r in body)
        statically = [r for r in body if r["row"][-1] == 1]
        assert len(statically) == res.summary()["pruned"] > 0
        for r in statically:
            assert r["row"][2] == "ok"
            assert r["row"][3] == res.golden_output

    def test_v2_ten_field_rows_resume_identically(self, tmp_path):
        spec = WorkSpec(source=SRC, layer="asm")
        cfg = CampaignConfig(n_campaigns=10, seed=6)
        path = tmp_path / "j.jsonl"
        clean = run_parallel_campaign(spec, cfg, workers=1,
                                      journal_path=str(path))
        # rewrite the journal as a v2 file: strip the pruned column
        lines = []
        for line in path.read_text().splitlines():
            doc = json.loads(line)
            doc.pop("c", None)
            if doc["ev"] == "header":
                doc["version"] = 2
            else:
                assert doc["row"][-1] == 0
                doc["row"] = doc["row"][:-1]
            lines.append(json.dumps(doc))
        v2 = tmp_path / "v2.jsonl"
        v2.write_text("\n".join(lines[:6]) + "\n")       # partial: resumes
        resumed = run_parallel_campaign(spec, cfg, workers=1,
                                        journal_path=str(v2))
        assert campaign_signature(resumed) == campaign_signature(clean)

    def test_journal_reader_pads_v2_rows(self, tmp_path):
        spec = WorkSpec(source=SRC, layer="ir")
        cfg = CampaignConfig(n_campaigns=6, seed=3)
        path = tmp_path / "j.jsonl"
        run_parallel_campaign(spec, cfg, workers=1, journal_path=str(path))
        _, completed = InjectionJournal._read(str(path))
        trimmed = {i: row[:-1] for i, row in completed.items()}
        v2 = tmp_path / "v2.jsonl"
        with open(v2, "w") as fh:
            fh.write(json.dumps({"ev": "header", "version": 2,
                                 "key": campaign_key(spec, cfg)}) + "\n")
            for i, row in trimmed.items():
                fh.write(json.dumps({"ev": "row", "i": i,
                                     "row": list(row)}) + "\n")
        _, reread = InjectionJournal._read(str(v2))
        assert reread == completed     # padded back to pruned=0

    def test_record_from_row_pads_v2(self, tmp_path):
        spec = WorkSpec(source=SRC, layer="ir")
        cfg = CampaignConfig(n_campaigns=6, seed=3)
        path = tmp_path / "j.jsonl"
        res = run_parallel_campaign(spec, cfg, workers=1,
                                    journal_path=str(path))
        _, completed = InjectionJournal._read(str(path))
        for i, row in completed.items():
            outcome, new = record_from_row(row, res.golden_output)
            old_outcome, old = record_from_row(row[:-1], res.golden_output)
            assert outcome is old_outcome
            assert dataclasses.astuple(new) == dataclasses.astuple(old)
            assert outcome is not Outcome.PRUNE_BENIGN

    def test_pruned_rows_classify_as_prune_benign(self, tmp_path):
        spec = WorkSpec(source=SRC, layer="asm", level=100)
        cfg = CampaignConfig(n_campaigns=24, seed=5, prune=True)
        path = tmp_path / "p.jsonl"
        res = run_parallel_campaign(spec, cfg, workers=1,
                                    journal_path=str(path))
        _, completed = InjectionJournal._read(str(path))
        pruned = [row for row in completed.values() if row[-1] == 1]
        assert len(pruned) == res.counts[Outcome.PRUNE_BENIGN] > 0
        for row in pruned:
            outcome, rec = record_from_row(row, res.golden_output)
            assert outcome is Outcome.PRUNE_BENIGN
            assert rec.outcome is Outcome.PRUNE_BENIGN

    def test_pruned_resume_is_bit_identical(self, tmp_path):
        spec = WorkSpec(source=SRC, layer="asm", level=100)
        cfg = CampaignConfig(n_campaigns=24, seed=5, prune=True)
        full = tmp_path / "full.jsonl"
        clean = run_parallel_campaign(spec, cfg, workers=1,
                                      journal_path=str(full))
        lines = full.read_text().splitlines(keepends=True)
        torn = tmp_path / "torn.jsonl"
        torn.write_text("".join(lines[:8]) + lines[8][:8])
        resumed = run_parallel_campaign(spec, cfg, workers=1,
                                        journal_path=str(torn))
        assert campaign_signature(resumed) == campaign_signature(clean)
        recs = [dataclasses.astuple(r) for r in resumed.records]
        assert recs == [dataclasses.astuple(r) for r in clean.records]
        assert resumed.counts[Outcome.PRUNE_BENIGN] == \
            clean.counts[Outcome.PRUNE_BENIGN] > 0


class TestLockstepForensics:
    """The differ names the corrupted edge for control-flow faults."""

    def test_cf_edge_named(self, built):
        golden = _sim(built, "ir", "naive", "cf").run()
        found = None
        for idx in range(min(golden.dyn_injectable, 6)):
            report = lockstep_built(built, inject_layer="ir",
                                    inject_index=idx, inject_bit=977,
                                    fault_model="cf")
            assert "fault model cf" in report.narrate()
            if report.cf_edge is not None:
                found = report
                break
        assert found is not None
        assert found.cf_edge["layer"] == "ir"
        assert "corrupted edge" in found.narrate()
        assert "redirected to" in found.narrate()

    def test_asm_cf_edge_named(self, built):
        golden = _sim(built, "asm", "naive", "cf").run()
        found = None
        for idx in range(min(golden.dyn_injectable, 6)):
            report = lockstep_built(built, inject_layer="asm",
                                    inject_index=idx, inject_bit=31,
                                    fault_model="cf")
            if report.cf_edge is not None:
                found = report
                break
        assert found is not None
        assert found.cf_edge["layer"] == "asm"
        assert "intended pc" in found.narrate()


class TestChaosMultiModel:
    def test_sweep_covers_all_models_without_escapes(self):
        report = chaos_sweep(benchmarks=["crc32"], scale="tiny", n=4,
                             seed=3)
        assert report.fault_models == FAULT_MODELS
        assert report.escapes == [] and report.divergences == []
        assert report.ok
        # 1 benchmark x 2 layers x 3 models x 3 tiers x 4 injections
        assert report.injections == 72
        assert report.classified == 72

    def test_restricted_model_list(self):
        report = chaos_sweep(benchmarks=["crc32"], scale="tiny", n=3,
                             seed=3, fault_models=["cf"])
        assert report.fault_models == ("cf",)
        assert report.ok

    def test_bad_model_rejected(self):
        with pytest.raises(CampaignError, match="unknown fault model"):
            chaos_sweep(benchmarks=["crc32"], scale="tiny", n=2,
                        fault_models=["cff"])
