"""Equivalence proofs for the perf work: pre-decoded dispatch, the
exec-compiled codegen tier, and the checkpoint-replay campaign engine
must all be bit-identical to the naive paths they replace — same
statuses, outputs, counters, traps, records, and profile counts, for
golden runs and injections alike, serial or parallel, interrupted or
not."""

import pytest

from repro.fi.bench import campaign_signature, run_campaign_bench
from repro.fi.campaign import (
    CampaignConfig,
    run_asm_campaign,
    run_ir_campaign,
)
from repro.fi.parallel import WorkSpec, run_parallel_campaign
from repro.interp.interpreter import IRInterpreter
from repro.machine.machine import AsmMachine
from repro.pipeline import build, build_from_source
from repro.protection.duplication import duplicate_module

SRC = """
int data[8] = {4, 2, 7, 1, 9, 3, 8, 6};
int acc[1] = {0};
int main() {
    for (int i = 0; i < 8; i++) {
        if (data[i] > 4) { acc[0] = acc[0] + data[i]; }
        else { acc[0] = acc[0] - data[i]; }
    }
    print(acc[0]);
    return 0;
}
"""


def _res_sig(res):
    extra = {k: v for k, v in res.extra.items() if k != "trace"}
    return (res.status.value, res.output, res.dyn_total,
            res.dyn_injectable, res.trap_kind, res.injected,
            res.injected_iid, res.per_inst_counts, extra)


def _ir(built, dispatch, **kw):
    return IRInterpreter(built.module, layout=built.layout,
                         dispatch=dispatch).run(**kw)


def _asm(built, dispatch, **kw):
    return AsmMachine(built.compiled, built.layout,
                      dispatch=dispatch).run(**kw)


@pytest.fixture(scope="module")
def built():
    return build_from_source(SRC, name="equiv")


@pytest.fixture(scope="module")
def built_protected():
    return build_from_source(SRC, name="equiv_prot", level=100)


class TestDispatchEquivalence:
    """Decoded dispatch is a pure compilation of the naive ladders."""

    @pytest.mark.parametrize("runner", [_ir, _asm], ids=["ir", "asm"])
    def test_golden_run_identical(self, built, runner):
        naive = runner(built, "naive", profile=True)
        decoded = runner(built, "decoded", profile=True)
        assert _res_sig(naive) == _res_sig(decoded)
        assert naive.per_inst_counts  # profiling actually ran

    @pytest.mark.parametrize("runner", [_ir, _asm], ids=["ir", "asm"])
    def test_injections_identical(self, built, runner):
        golden = runner(built, "naive")
        n_inj = golden.dyn_injectable
        # sweep a spread of sites x bits, including high bits that tend
        # to produce traps (segfault/bad-jump) rather than silent SDCs
        sites = sorted({0, 1, n_inj // 3, n_inj // 2, n_inj - 1})
        for idx in sites:
            for bit in (0, 17, 62, 63):
                naive = runner(built, "naive",
                               inject_index=idx, inject_bit=bit)
                decoded = runner(built, "decoded",
                                 inject_index=idx, inject_bit=bit)
                assert _res_sig(naive) == _res_sig(decoded), \
                    f"mismatch at idx={idx} bit={bit}"

    @pytest.mark.parametrize("runner", [_ir, _asm], ids=["ir", "asm"])
    def test_protected_program_identical(self, built_protected, runner):
        naive = runner(built_protected, "naive")
        decoded = runner(built_protected, "decoded")
        assert _res_sig(naive) == _res_sig(decoded)

    def test_decode_cache_invalidated_by_module_mutation(self):
        # the decode pass memoizes per-module; passes mutate modules in
        # place, so the cache must notice and recompile
        built = build_from_source(SRC, name="equiv_mut")
        before = _ir(built, "decoded")
        duplicate_module(built.module)
        after_decoded = _ir(built, "decoded")
        after_naive = _ir(built, "naive")
        assert after_decoded.dyn_total > before.dyn_total
        assert _res_sig(after_decoded) == _res_sig(after_naive)


class TestCheckpointReplay:
    """Resuming from a checkpoint snapshot replays the exact suffix."""

    @pytest.mark.parametrize("runner", [_ir, _asm], ids=["ir", "asm"])
    def test_resume_matches_full_run(self, built, runner):
        golden = runner(built, "decoded")
        n_inj = golden.dyn_injectable
        targets = sorted({1, n_inj // 2, n_inj - 1})
        snaps = {}

        def grab(idx, snap):
            snaps[idx] = snap

        res = runner(built, "decoded", checkpoints=targets,
                     checkpoint_cb=grab)
        assert sorted(snaps) == targets
        assert res.extra.get("early_stop") is True
        for idx in targets:
            for bit in (0, 40, 63):
                full = runner(built, "decoded",
                              inject_index=idx, inject_bit=bit)
                replay = runner(built, "decoded", inject_index=idx,
                                inject_bit=bit, resume_from=snaps[idx])
                assert _res_sig(full) == _res_sig(replay), \
                    f"replay mismatch at idx={idx} bit={bit}"

    @pytest.mark.parametrize("runner", [_ir, _asm], ids=["ir", "asm"])
    def test_one_simulator_serves_many_replays(self, built, runner):
        # the engine reuses one simulator across all replays; state from
        # a previous (possibly trapped) replay must never leak
        golden = runner(built, "decoded")
        idx = golden.dyn_injectable // 2
        snaps = {}
        runner(built, "decoded", checkpoints=[idx],
               checkpoint_cb=lambda i, s: snaps.update({i: s}))
        expected = [
            _res_sig(runner(built, "decoded",
                            inject_index=idx, inject_bit=bit))
            for bit in (63, 0, 63, 17)
        ]
        if runner is _ir:
            sim = IRInterpreter(built.module, layout=built.layout)
        else:
            sim = AsmMachine(built.compiled, built.layout)
        got = [
            _res_sig(sim.run(inject_index=idx, inject_bit=bit,
                             resume_from=snaps[idx]))
            for bit in (63, 0, 63, 17)
        ]
        assert got == expected

    def test_naive_dispatch_rejects_checkpointing(self, built):
        with pytest.raises(Exception, match="decoded"):
            _asm(built, "naive", checkpoints=[1], checkpoint_cb=print)


class TestCodegenEquivalence:
    """The codegen tier executes exec-compiled specialized source; every
    observable must stay bit-identical to the naive ladders."""

    @pytest.mark.parametrize("runner", [_ir, _asm], ids=["ir", "asm"])
    def test_golden_run_identical(self, built, runner):
        naive = runner(built, "naive")
        codegen = runner(built, "codegen")
        assert _res_sig(naive) == _res_sig(codegen)

    @pytest.mark.parametrize("runner", [_ir, _asm], ids=["ir", "asm"])
    def test_injections_identical_vs_naive(self, built, runner):
        golden = runner(built, "naive")
        n_inj = golden.dyn_injectable
        sites = sorted({0, 1, n_inj // 3, n_inj // 2, n_inj - 1})
        for idx in sites:
            for bit in (0, 17, 62, 63):
                naive = runner(built, "naive",
                               inject_index=idx, inject_bit=bit)
                codegen = runner(built, "codegen",
                                 inject_index=idx, inject_bit=bit)
                assert _res_sig(naive) == _res_sig(codegen), \
                    f"mismatch at idx={idx} bit={bit}"

    @pytest.mark.parametrize("runner", [_ir, _asm], ids=["ir", "asm"])
    def test_protected_program_identical(self, built_protected, runner):
        naive = runner(built_protected, "naive")
        codegen = runner(built_protected, "codegen")
        assert _res_sig(naive) == _res_sig(codegen)

    def test_codegen_cache_invalidated_by_module_mutation(self):
        # generated source is cached per module by content fingerprint;
        # passes mutate modules in place, so the cache must regenerate
        built = build_from_source(SRC, name="equiv_cgmut")
        before = _ir(built, "codegen")
        duplicate_module(built.module)
        after_codegen = _ir(built, "codegen")
        after_naive = _ir(built, "naive")
        assert after_codegen.dyn_total > before.dyn_total
        assert _res_sig(after_codegen) == _res_sig(after_naive)

    @pytest.mark.parametrize("runner", [_ir, _asm], ids=["ir", "asm"])
    def test_codegen_replay_matches_full_run(self, built, runner):
        # snapshots stream from the decoded core; suffixes replay on the
        # codegen tier and must match full codegen (and naive) runs
        golden = runner(built, "decoded")
        n_inj = golden.dyn_injectable
        targets = sorted({1, n_inj // 2, n_inj - 1})
        snaps = {}
        res = runner(built, "codegen", checkpoints=targets,
                     checkpoint_cb=lambda i, s: snaps.update({i: s}))
        assert sorted(snaps) == targets
        assert res.extra.get("early_stop") is True
        for idx in targets:
            for bit in (0, 40, 63):
                full = runner(built, "naive",
                              inject_index=idx, inject_bit=bit)
                replay = runner(built, "codegen", inject_index=idx,
                                inject_bit=bit, resume_from=snaps[idx])
                assert _res_sig(full) == _res_sig(replay), \
                    f"replay mismatch at idx={idx} bit={bit}"

    @pytest.mark.parametrize("seed", [0, 2023])
    def test_ir_campaign_codegen_dispatch(self, built, seed):
        cfg = CampaignConfig(n_campaigns=40, seed=seed)
        naive = run_ir_campaign(built.module, cfg, built.layout,
                                engine=False)
        codegen = run_ir_campaign(built.module, cfg, built.layout,
                                  engine=True, dispatch="codegen")
        assert campaign_signature(naive) == campaign_signature(codegen)

    @pytest.mark.parametrize("seed", [0, 2023])
    def test_asm_campaign_codegen_dispatch(self, built, seed):
        cfg = CampaignConfig(n_campaigns=40, seed=seed)
        naive = run_asm_campaign(built.compiled, built.layout, cfg,
                                 engine=False)
        codegen = run_asm_campaign(built.compiled, built.layout, cfg,
                                   engine=True, dispatch="codegen")
        assert campaign_signature(naive) == campaign_signature(codegen)

    def test_benchmark_campaign_codegen_dispatch(self):
        built = build("crc32", scale="tiny")
        cfg = CampaignConfig(n_campaigns=30, seed=5)
        for layer, run, args in (
            ("ir", run_ir_campaign, (built.module, cfg, built.layout)),
            ("asm", run_asm_campaign,
             (built.compiled, built.layout, cfg)),
        ):
            decoded = run(*args, engine=True, dispatch="decoded")
            codegen = run(*args, engine=True, dispatch="codegen")
            assert campaign_signature(decoded) == \
                campaign_signature(codegen), layer

    @pytest.mark.parametrize("layer", ["ir", "asm"])
    def test_parallel_codegen_matches_naive_serial(self, layer,
                                                   monkeypatch):
        spec = WorkSpec(source=SRC, layer=layer)
        cfg = CampaignConfig(n_campaigns=16, seed=3)
        monkeypatch.setenv("REPRO_DISPATCH", "codegen")
        parallel = run_parallel_campaign(spec, cfg, workers=2)
        monkeypatch.delenv("REPRO_DISPATCH")
        monkeypatch.setenv("REPRO_ENGINE", "0")
        serial = run_parallel_campaign(spec, cfg, workers=1)
        assert campaign_signature(parallel) == campaign_signature(serial)

    def test_kill_and_resume_codegen_matches_naive(self, tmp_path,
                                                   monkeypatch):
        spec = WorkSpec(source=SRC, layer="asm")
        cfg = CampaignConfig(n_campaigns=16, seed=9)
        monkeypatch.setenv("REPRO_DISPATCH", "codegen")
        full = tmp_path / "full.jsonl"
        run_parallel_campaign(spec, cfg, workers=1,
                              journal_path=str(full))
        lines = full.read_text().splitlines(keepends=True)
        torn = tmp_path / "torn.jsonl"
        torn.write_text("".join(lines[:7]) + lines[7][:10])
        resumed = run_parallel_campaign(spec, cfg, workers=1,
                                        journal_path=str(torn))
        monkeypatch.delenv("REPRO_DISPATCH")
        monkeypatch.setenv("REPRO_ENGINE", "0")
        clean = run_parallel_campaign(spec, cfg, workers=1)
        assert campaign_signature(resumed) == campaign_signature(clean)


class TestCampaignEquivalence:
    """Engine campaigns are bit-identical to naive re-execution."""

    @pytest.mark.parametrize("seed", [0, 7, 2023])
    def test_ir_campaign(self, built, seed):
        cfg = CampaignConfig(n_campaigns=40, seed=seed)
        naive = run_ir_campaign(built.module, cfg, built.layout,
                                engine=False)
        fast = run_ir_campaign(built.module, cfg, built.layout,
                               engine=True)
        assert campaign_signature(naive) == campaign_signature(fast)

    @pytest.mark.parametrize("seed", [0, 7, 2023])
    def test_asm_campaign(self, built, seed):
        cfg = CampaignConfig(n_campaigns=40, seed=seed)
        naive = run_asm_campaign(built.compiled, built.layout, cfg,
                                 engine=False)
        fast = run_asm_campaign(built.compiled, built.layout, cfg,
                                engine=True)
        assert campaign_signature(naive) == campaign_signature(fast)

    def test_protected_campaign(self, built_protected):
        cfg = CampaignConfig(n_campaigns=40, seed=11)
        naive = run_asm_campaign(built_protected.compiled,
                                 built_protected.layout, cfg,
                                 engine=False)
        fast = run_asm_campaign(built_protected.compiled,
                                built_protected.layout, cfg, engine=True)
        assert campaign_signature(naive) == campaign_signature(fast)

    def test_benchmark_campaign(self):
        built = build("crc32", scale="tiny")
        cfg = CampaignConfig(n_campaigns=30, seed=5)
        for layer, run, args in (
            ("ir", run_ir_campaign, (built.module, cfg, built.layout)),
            ("asm", run_asm_campaign,
             (built.compiled, built.layout, cfg)),
        ):
            naive = run(*args, engine=False)
            fast = run(*args, engine=True)
            assert campaign_signature(naive) == \
                campaign_signature(fast), layer


class TestRunnersAndResume:
    """The engine composes with the supervisor and the journal."""

    @pytest.mark.parametrize("layer", ["ir", "asm"])
    def test_parallel_matches_naive_serial(self, layer, monkeypatch):
        spec = WorkSpec(source=SRC, layer=layer)
        cfg = CampaignConfig(n_campaigns=16, seed=3)
        parallel = run_parallel_campaign(spec, cfg, workers=2)
        monkeypatch.setenv("REPRO_ENGINE", "0")
        serial = run_parallel_campaign(spec, cfg, workers=1)
        assert campaign_signature(parallel) == campaign_signature(serial)

    def test_kill_and_resume_matches_naive(self, tmp_path, monkeypatch):
        spec = WorkSpec(source=SRC, layer="asm")
        cfg = CampaignConfig(n_campaigns=16, seed=9)
        full = tmp_path / "full.jsonl"
        run_parallel_campaign(spec, cfg, workers=1,
                              journal_path=str(full))
        lines = full.read_text().splitlines(keepends=True)
        # truncate mid-row: the on-disk state after SIGKILL
        torn = tmp_path / "torn.jsonl"
        torn.write_text("".join(lines[:7]) + lines[7][:10])
        resumed = run_parallel_campaign(spec, cfg, workers=1,
                                        journal_path=str(torn))
        monkeypatch.setenv("REPRO_ENGINE", "0")
        clean = run_parallel_campaign(spec, cfg, workers=1)
        assert campaign_signature(resumed) == campaign_signature(clean)


#: calls + loops + memory: rich enough that single flips reach every
#: interesting trap (bad pointers, corrupted branch targets, runaway
#: loops) — the (idx, bit) pairs below were found by exhaustive scan
#: and are pinned; the tests re-assert the expected trap kind, so a
#: codegen change that moves them fails loudly instead of silently
#: testing nothing
TRAP_SRC = """
int vals[4] = {3, 1, 4, 1};
int agg(int a, int b) { return a * 2 + b; }
int main() {
    int s = 0;
    for (int i = 0; i < 4; i++) { s = agg(s, vals[i]); }
    print(s);
    return 0;
}
"""

#: (layer, expected trap kind, inject_index, inject_bit)
TRAP_CASES = [
    ("ir", "segfault", 3, 18),          # bad pointer
    ("ir", "step-budget", 11, 63),      # runaway loop hits the budget
    ("asm", "segfault", 0, 0),          # bad pointer
    ("asm", "bad-jump", 0, 4),          # corrupted branch/return target
    ("asm", "stack-overflow", 0, 19),   # corrupted stack pointer
    ("asm", "step-budget", 0, 12),      # runaway loop hits the budget
]


@pytest.fixture(scope="module")
def trap_built():
    return build_from_source(TRAP_SRC, name="equiv_trap")


class TestTrapEquivalence:
    """Trapping injections are bit-identical across dispatch modes and
    the checkpoint-replay engine: same outcome, same trap kind, same
    dynamic counters."""

    @staticmethod
    def _sim(built, layer, dispatch, max_steps):
        if layer == "ir":
            return IRInterpreter(built.module, layout=built.layout,
                                 max_steps=max_steps, dispatch=dispatch)
        return AsmMachine(built.compiled, built.layout,
                          max_steps=max_steps, dispatch=dispatch)

    @classmethod
    def _max_steps(cls, built, layer):
        golden = cls._sim(built, layer, "decoded", 1_000_000).run()
        return max(1000, golden.dyn_total * 4)

    @pytest.mark.parametrize("layer,kind,idx,bit", TRAP_CASES)
    def test_trap_identical_across_dispatch(self, trap_built, layer,
                                            kind, idx, bit):
        from repro.execresult import RunStatus

        ms = self._max_steps(trap_built, layer)
        naive = self._sim(trap_built, layer, "naive", ms).run(
            inject_index=idx, inject_bit=bit)
        decoded = self._sim(trap_built, layer, "decoded", ms).run(
            inject_index=idx, inject_bit=bit)
        codegen = self._sim(trap_built, layer, "codegen", ms).run(
            inject_index=idx, inject_bit=bit)
        assert naive.status is RunStatus.TRAP
        assert naive.trap_kind == kind
        assert _res_sig(naive) == _res_sig(decoded)
        assert _res_sig(naive) == _res_sig(codegen)

    @pytest.mark.parametrize("layer,kind,idx,bit", TRAP_CASES)
    def test_trap_identical_through_engine(self, trap_built, layer,
                                           kind, idx, bit):
        from repro.fi.engine import run_injection_suite

        ms = self._max_steps(trap_built, layer)
        full = self._sim(trap_built, layer, "decoded", ms).run(
            inject_index=idx, inject_bit=bit)
        assert full.trap_kind == kind
        got = {}
        run_injection_suite(
            layer, [(0, idx, bit)], ms,
            module=trap_built.module, layout=trap_built.layout,
            program=trap_built.compiled,
            emit=lambda tag, res: got.__setitem__(tag, res),
        )
        assert _res_sig(got[0]) == _res_sig(full)


class TestBenchHarness:
    def test_bench_document_shape(self):
        doc = run_campaign_bench("crc32", scale="tiny", n=6, seed=1)
        assert doc["schema"] == "bench_campaign/6"
        assert set(doc["layers"]) == {"ir", "asm"}
        for d in doc["layers"].values():
            assert d["results_identical"] is True
            assert d["naive_seconds"] > 0 and d["engine_seconds"] > 0
            c = d["containment"]
            assert c["results_identical"] is True
            assert c["off_seconds"] > 0 and c["on_seconds"] > 0
            g = d["codegen"]
            assert g["results_identical"] is True
            assert g["decoded_seconds"] > 0 and g["codegen_seconds"] > 0
            inc = d["incremental"]
            assert inc["sections"] >= 1
            assert inc["cold_seconds"] > 0 and inc["warm_seconds"] > 0
            assert inc["warm_simulated"] == 0
            assert inc["warm_pure_hits"] is True
        pr = doc["pruning"]
        assert pr["sound"] is True
        assert pr["prune"]["estimates_identical"] is True
        assert pr["prune"]["pruned"] > 0
        assert pr["stratified"]["ci_overlap"] is True
        assert pr["stratified"]["steps_ratio"] >= 2.0
        assert doc["overall"]["results_identical"] is True
        assert doc["overall"]["containment"]["results_identical"] is True
        assert doc["overall"]["codegen"]["results_identical"] is True
        tg = doc["testgen"]
        assert tg["oracle_ok"] is True
        assert tg["within_budget"] is True
        assert tg["oracle_matrix_runs"] == 48 * tg["oracle_programs"]
        # under pytest other suites may have imported repro.testgen
        # already, so only the flag's presence is asserted here; the CI
        # artifact is produced by a fresh process where it must be False
        assert "campaign_imports_testgen" in tg

    def test_engine_env_toggle(self, built, monkeypatch):
        cfg = CampaignConfig(n_campaigns=10, seed=4)
        monkeypatch.setenv("REPRO_ENGINE", "0")
        off = run_ir_campaign(built.module, cfg, built.layout)
        monkeypatch.delenv("REPRO_ENGINE")
        on = run_ir_campaign(built.module, cfg, built.layout)
        assert campaign_signature(off) == campaign_signature(on)
