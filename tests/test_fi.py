"""Tests for fault-injection outcomes and campaign orchestration."""

import pytest

from repro.errors import CampaignError
from repro.execresult import ExecResult, RunStatus
from repro.fi.campaign import (
    CampaignConfig,
    run_asm_campaign,
    run_ir_campaign,
)
from repro.fi.outcomes import Outcome, classify_outcome
from repro.frontend.codegen import compile_source

from tests.helpers import compile_and_build

SRC = """
int data[6] = {4, 2, 7, 1, 9, 3};
int main() {
    int best = data[0];
    for (int i = 1; i < 6; i++) {
        if (data[i] > best) { best = data[i]; }
    }
    print(best);
    return 0;
}
"""


def _result(status, output="x"):
    return ExecResult(status=status, output=output, dyn_total=1,
                      dyn_injectable=1)


class TestOutcomeClassification:
    def test_benign(self):
        assert classify_outcome(_result(RunStatus.OK, "g"), "g") is Outcome.BENIGN

    def test_sdc(self):
        assert classify_outcome(_result(RunStatus.OK, "bad"), "g") is Outcome.SDC

    def test_due(self):
        assert classify_outcome(_result(RunStatus.TRAP), "g") is Outcome.DUE

    def test_detected(self):
        assert classify_outcome(_result(RunStatus.DETECTED), "g") is Outcome.DETECTED


class TestCampaignConfigValidation:
    def test_zero_campaigns_rejected(self):
        with pytest.raises(CampaignError, match="n_campaigns"):
            CampaignConfig(n_campaigns=0)

    def test_negative_campaigns_rejected(self):
        with pytest.raises(CampaignError, match="n_campaigns"):
            CampaignConfig(n_campaigns=-5)

    def test_negative_seed_rejected(self):
        with pytest.raises(CampaignError, match="seed"):
            CampaignConfig(seed=-1)

    def test_bad_max_steps_factor_rejected(self):
        with pytest.raises(CampaignError, match="max_steps_factor"):
            CampaignConfig(max_steps_factor=0)

    def test_bad_min_max_steps_rejected(self):
        with pytest.raises(CampaignError, match="min_max_steps"):
            CampaignConfig(min_max_steps=0)

    def test_valid_config_accepted(self):
        cfg = CampaignConfig(n_campaigns=1, seed=0, max_steps_factor=1,
                             min_max_steps=1)
        assert cfg.n_campaigns == 1


class TestIrCampaign:
    def test_counts_sum_to_n(self):
        module = compile_source(SRC)
        res = run_ir_campaign(module, CampaignConfig(n_campaigns=50, seed=3))
        assert sum(res.counts.values()) == 50
        assert len(res.records) == 50
        assert res.layer == "ir"

    def test_probabilities_sum_to_one(self):
        module = compile_source(SRC)
        res = run_ir_campaign(module, CampaignConfig(n_campaigns=40, seed=3))
        s = res.summary()
        rates = [s[k] for k in ("sdc", "due", "detected", "benign")]
        assert abs(sum(rates) - 1.0) < 1e-9
        for k in ("sdc", "due", "detected", "benign"):
            lo, hi = s[f"{k}_ci"]
            assert 0.0 <= lo <= s[k] <= hi <= 1.0

    def test_deterministic_given_seed(self):
        a = run_ir_campaign(compile_source(SRC),
                            CampaignConfig(n_campaigns=30, seed=11))
        b = run_ir_campaign(compile_source(SRC),
                            CampaignConfig(n_campaigns=30, seed=11))
        assert a.counts == b.counts
        assert [(r.dyn_index, r.bit, r.outcome) for r in a.records] == \
               [(r.dyn_index, r.bit, r.outcome) for r in b.records]

    def test_seed_changes_samples(self):
        a = run_ir_campaign(compile_source(SRC),
                            CampaignConfig(n_campaigns=30, seed=1))
        b = run_ir_campaign(compile_source(SRC),
                            CampaignConfig(n_campaigns=30, seed=2))
        assert [(r.dyn_index, r.bit) for r in a.records] != \
               [(r.dyn_index, r.bit) for r in b.records]

    def test_records_have_attribution(self):
        module = compile_source(SRC)
        res = run_ir_campaign(module, CampaignConfig(n_campaigns=25, seed=5))
        iids = {i.iid for i in module.instructions()}
        for rec in res.records:
            assert rec.iid in iids

    def test_sdc_records_helper(self):
        module = compile_source(SRC)
        res = run_ir_campaign(module, CampaignConfig(n_campaigns=60, seed=5))
        assert all(r.outcome is Outcome.SDC for r in res.sdc_records())
        assert len(res.sdc_records()) == res.counts[Outcome.SDC]

    def test_broken_golden_rejected(self):
        module = compile_source(
            "int main() { int z = 0; print(1 / z); return 0; }"
        )
        with pytest.raises(CampaignError):
            run_ir_campaign(module, CampaignConfig(n_campaigns=5))


class TestAsmCampaign:
    def test_counts_and_metadata(self):
        _, layout, _, compiled = compile_and_build(SRC)
        res = run_asm_campaign(compiled, layout,
                               CampaignConfig(n_campaigns=50, seed=3))
        assert sum(res.counts.values()) == 50
        assert res.layer == "asm"
        for rec in res.records:
            assert rec.asm_index is not None
            assert rec.asm_role
            assert rec.asm_opcode

    def test_deterministic(self):
        _, layout, _, compiled = compile_and_build(SRC)
        cfg = CampaignConfig(n_campaigns=30, seed=9)
        a = run_asm_campaign(compiled, layout, cfg)
        b = run_asm_campaign(compiled, layout, cfg)
        assert a.counts == b.counts

    def test_asm_campaign_finds_sdcs(self):
        _, layout, _, compiled = compile_and_build(SRC)
        res = run_asm_campaign(compiled, layout,
                               CampaignConfig(n_campaigns=120, seed=3))
        assert res.counts[Outcome.SDC] > 0

    def test_due_records_carry_trap_kind(self):
        _, layout, _, compiled = compile_and_build(SRC)
        res = run_asm_campaign(compiled, layout,
                               CampaignConfig(n_campaigns=120, seed=3))
        dues = [r for r in res.records if r.outcome is Outcome.DUE]
        assert all(r.trap_kind for r in dues)
