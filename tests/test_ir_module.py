"""Tests for Module/Function/BasicBlock containers and the builder."""

import pytest

from repro.errors import IRError
from repro.ir import types as T
from repro.ir.builder import IRBuilder
from repro.ir.module import BasicBlock, Module
from repro.ir.types import function_type
from repro.ir.values import const_int


@pytest.fixture
def module():
    return Module("m")


def make_fn(module, name="f", ret=T.VOID, params=()):
    return module.add_function(name, function_type(ret, params))


class TestModule:
    def test_duplicate_global_rejected(self, module):
        module.global_var("g", T.I64)
        with pytest.raises(IRError):
            module.global_var("g", T.I64)

    def test_duplicate_function_rejected(self, module):
        make_fn(module)
        with pytest.raises(IRError):
            make_fn(module)

    def test_missing_lookups(self, module):
        with pytest.raises(IRError):
            module.function("nope")
        with pytest.raises(IRError):
            module.get_global("nope")

    def test_iids_unique_and_monotonic(self, module):
        fn = make_fn(module)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        i1 = b.add(b.i64(1), b.i64(2))
        i2 = b.add(i1, b.i64(3))
        b.ret()
        assert 0 < i1.iid < i2.iid
        assert module.static_instruction_count() == 3

    def test_instruction_by_iid(self, module):
        fn = make_fn(module)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        inst = b.add(b.i64(1), b.i64(2))
        b.ret()
        assert module.instruction_by_iid(inst.iid) is inst
        with pytest.raises(IRError):
            module.instruction_by_iid(99999)


class TestFunction:
    def test_entry_is_first_block(self, module):
        fn = make_fn(module)
        first = fn.new_block("entry")
        fn.new_block("other")
        assert fn.entry is first

    def test_declaration(self, module):
        fn = make_fn(module)
        assert fn.is_declaration
        fn.new_block("entry")
        assert not fn.is_declaration

    def test_unique_labels(self, module):
        fn = make_fn(module)
        a = fn.new_block("body")
        b = fn.new_block("body")
        assert a.label != b.label

    def test_args_match_signature(self, module):
        fn = make_fn(module, name="g", ret=T.I64, params=[T.I64, T.F64])
        assert len(fn.args) == 2
        assert fn.args[0].type is T.I64
        assert fn.args[1].type is T.F64
        assert fn.args[1].index == 1
        assert fn.return_type is T.I64

    def test_predecessors(self, module):
        fn = make_fn(module)
        b = IRBuilder(fn)
        entry = b.set_block(b.new_block("entry"))
        then = b.new_block("then")
        done = b.new_block("done")
        cond = b.icmp("eq", b.i64(1), b.i64(1))
        b.condbr(cond, then, done)
        b.set_block(then)
        b.br(done)
        b.set_block(done)
        b.ret()
        preds = fn.predecessors()
        assert preds[entry] == []
        assert preds[then] == [entry]
        assert set(preds[done]) == {entry, then}

    def test_compute_uses(self, module):
        fn = make_fn(module)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        x = b.add(b.i64(1), b.i64(2))
        y = b.mul(x, x)
        b.ret()
        uses = fn.compute_uses()
        assert uses[x.iid] == [y, y]  # x appears twice in y's operands


class TestBasicBlock:
    def test_append_after_terminator_rejected(self, module):
        fn = make_fn(module)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.ret()
        with pytest.raises(IRError):
            b.ret()

    def test_index_of(self, module):
        fn = make_fn(module)
        b = IRBuilder(fn)
        blk = b.set_block(b.new_block("entry"))
        x = b.add(b.i64(1), b.i64(1))
        b.ret()
        assert blk.index_of(x) == 0


class TestBuilder:
    def test_no_insertion_point(self, module):
        fn = make_fn(module)
        b = IRBuilder(fn)
        with pytest.raises(IRError):
            b.ret()

    def test_is_terminated(self, module):
        fn = make_fn(module)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        assert not b.is_terminated
        b.ret()
        assert b.is_terminated

    def test_constants_helpers(self):
        assert IRBuilder.i64(5).type is T.I64
        assert IRBuilder.i32(5).type is T.I32
        assert IRBuilder.f64(5.0).type is T.F64
        assert IRBuilder.true().value == 1
        assert IRBuilder.false().value == 0

    def test_all_binops_constructible(self, module):
        fn = make_fn(module)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        one, two = b.i64(1), b.i64(2)
        for meth in ("add", "sub", "mul", "sdiv", "srem", "and_", "or_",
                     "xor", "shl", "ashr", "lshr"):
            inst = getattr(b, meth)(one, two)
            assert inst.type is T.I64
        f1, f2 = b.f64(1.0), b.f64(2.0)
        for meth in ("fadd", "fsub", "fmul", "fdiv"):
            assert getattr(b, meth)(f1, f2).type is T.F64
        b.ret()
