"""Property-based tests for the optimizer: random MiniC programs must
keep identical output, never get slower, and stay cross-layer
equivalent after optimization.

Programs come from the shared generator in :mod:`repro.testgen`
(via its hypothesis strategy wrappers), like every other property
suite.
"""

from hypothesis import HealthCheck, given, settings

from repro.backend.lower import lower_module
from repro.execresult import RunStatus
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import run_ir
from repro.interp.layout import GlobalLayout
from repro.ir.verifier import verify_module
from repro.machine.machine import compile_program, run_asm
from repro.opt import optimize_module
from repro.testgen.strategies import minic_sources as programs

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@_SETTINGS
@given(programs())
def test_optimization_preserves_output_and_speed(src):
    module = compile_source(src)
    golden = run_ir(module, max_steps=2_000_000)
    optimize_module(module)
    verify_module(module)
    res = run_ir(module, max_steps=2_000_000)
    assert res.status is RunStatus.OK
    assert res.output == golden.output
    assert res.dyn_total <= golden.dyn_total


@_SETTINGS
@given(programs())
def test_optimized_modules_stay_cross_layer_equivalent(src):
    module = compile_source(src)
    optimize_module(module)
    layout = GlobalLayout(module)
    compiled = compile_program(lower_module(module, layout).flatten())
    ir = run_ir(module, layout=layout, max_steps=2_000_000)
    asm = run_asm(compiled, layout, max_steps=8_000_000)
    assert asm.status is RunStatus.OK
    assert asm.output == ir.output
