"""Compositional incremental campaigns (DESIGN §15).

Covers the section partitioner (exactly-once dynamic site coverage,
outside-edit hash insensitivity), the exhaustive composition oracle
(composed per-section outcome counts bit-match a naive whole-program
exhaustive campaign at every engine tier and fault model), the
journal-backed profile store (cache hits, torn-tail resume, schema
guard), the composition statistics, and the planner fast path.
"""

from __future__ import annotations

import os
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings

from repro.errors import CampaignError
from repro.faultmodel import FAULT_MODELS
from repro.fi.campaign import CampaignConfig
from repro.fi.compose import (
    SectionProfileStore,
    _allocate,
    cached_site_map,
    profile_key,
    run_incremental_campaign,
)
from repro.fi.outcomes import Outcome, classify_outcome
from repro.fi.sections import map_sites, module_env_hash, partition_ir
from repro.fi.stats import composed_interval, wilson_interval
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import IRInterpreter
from repro.machine.machine import AsmMachine
from repro.pipeline import build_from_source
from repro.protection.planner import evaluate_protection, profile_module
from repro.testgen.minic import GenConfig
from repro.testgen.strategies import minic_sources

_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: tiny generator config so property examples stay fast
_SMALL = GenConfig(
    n_global_scalars=(1, 2), n_global_arrays=(1, 1), array_pow2=(1, 2),
    n_functions=(1, 2), n_main_stmts=(2, 4), n_func_stmts=(1, 2),
    max_block_depth=1, max_trip=3, max_expr_depth=2,
)

#: two functions, short loops — small enough for exhaustive campaigns
SRC = """
const int N = 5;

int scale(int x) {
    int acc = x;
    for (int i = 0; i < 3; i++) {
        acc = acc * 2 + i;
    }
    return acc;
}

int main() {
    int total = 0;
    for (int i = 0; i < N; i++) {
        total = total + scale(i);
    }
    print(total);
    return 0;
}
"""

#: same `scale` function, different main — the outside-edit pair
SRC_EDITED = SRC.replace("total = total + scale(i);",
                         "total = total + scale(i) + 1;")


def _build(src=SRC):
    return build_from_source(src, name="inc-test")


# -- partitioning: exactly-once coverage --------------------------------


class TestPartitioning:
    @pytest.mark.parametrize("layer", ["ir", "asm"])
    @pytest.mark.parametrize("fm", FAULT_MODELS)
    def test_every_site_exactly_once(self, layer, fm):
        built = _build()
        sm = map_sites(built, layer, fm)
        all_sites = [i for sec in sm.dyn_indices for i in sec]
        assert sorted(all_sites) == list(range(sm.golden_dyn_injectable))
        assert len(all_sites) == len(set(all_sites))

    @settings(_SETTINGS)
    @given(minic_sources(_SMALL))
    def test_every_site_exactly_once_generated(self, src):
        built = build_from_source(src, name="gen")
        for layer in ("ir", "asm"):
            for fm in FAULT_MODELS:
                sm = map_sites(built, layer, fm)
                flat = [i for sec in sm.dyn_indices for i in sec]
                assert sorted(flat) == \
                    list(range(sm.golden_dyn_injectable)), (layer, fm)

    def test_ir_hash_insensitive_to_outside_edit(self):
        a, b = _build(SRC), _build(SRC_EDITED)
        ha = {s.name: s.content_hash for s in partition_ir(a.module)}
        hb = {s.name: s.content_hash for s in partition_ir(b.module)}
        assert ha["scale"] == hb["scale"]
        assert ha["main"] != hb["main"]
        assert module_env_hash(a.module) == module_env_hash(b.module)

    def test_asm_hash_insensitive_to_outside_edit(self):
        from repro.fi.sections import partition_asm

        a, b = _build(SRC), _build(SRC_EDITED)
        ha = {s.name: s.content_hash
              for s in partition_asm(a.compiled)}
        hb = {s.name: s.content_hash
              for s in partition_asm(b.compiled)}
        scale_a = {n: h for n, h in ha.items() if n.startswith("scale#")}
        scale_b = {n: h for n, h in hb.items() if n.startswith("scale#")}
        assert scale_a and scale_a == scale_b
        assert ha != hb      # main's regions did change

    @settings(_SETTINGS)
    @given(minic_sources(_SMALL))
    def test_generated_hashes_are_stable(self, src):
        a = build_from_source(src, name="gen")
        b = build_from_source(src, name="gen")
        ha = [s.content_hash for s in partition_ir(a.module)]
        hb = [s.content_hash for s in partition_ir(b.module)]
        assert ha == hb


# -- the exhaustive composition oracle ----------------------------------


class TestExhaustiveOracle:
    BITS = (0, 1, 63)

    @pytest.mark.parametrize("fm", FAULT_MODELS)
    @pytest.mark.parametrize("layer", ["ir", "asm"])
    def test_composed_bit_matches_whole_program(self, layer, fm):
        """Per-section composed outcome counts == a naive whole-program
        exhaustive campaign over the same (site, bit) pairs, at both
        engine tiers (naive is the reference side — all three dispatch
        tiers participate)."""
        built = _build()
        sm = map_sites(built, layer, fm)
        max_steps = max(20_000, sm.golden_dyn_total * 4)

        reference = {}
        for sec in sm.sections:
            ref = Counter()
            for idx in sm.dyn_indices[sec.index]:
                for bit in self.BITS:
                    if layer == "ir":
                        res = IRInterpreter(
                            built.module, layout=built.layout,
                            max_steps=max_steps, dispatch="naive",
                            fault_model=fm,
                        ).run(inject_index=idx, inject_bit=bit)
                    else:
                        res = AsmMachine(
                            built.compiled, layout=built.layout,
                            max_steps=max_steps, dispatch="naive",
                            fault_model=fm,
                        ).run(inject_index=idx, inject_bit=bit)
                    ref[classify_outcome(res, sm.golden_output)] += 1
            reference[sec.name] = dict(ref)

        for tier in ("decoded", "codegen"):
            composed = run_incremental_campaign(
                built, layer, CampaignConfig(n_campaigns=1), None,
                fault_model=fm, dispatch=tier, exhaustive_bits=self.BITS,
            )
            for so in composed.sections:
                got = {o: c for o, c in so.profile.counts.items() if c}
                assert got == reference[so.section.name], \
                    (layer, fm, tier, so.section.name)


# -- the profile store --------------------------------------------------


class TestStore:
    def test_warm_run_simulates_nothing(self, tmp_path):
        built = _build()
        path = str(tmp_path / "store.jsonl")
        cfg = CampaignConfig(n_campaigns=40, seed=3)
        with SectionProfileStore(path) as store:
            cold = run_incremental_campaign(built, "ir", cfg, store)
        with SectionProfileStore(path) as store:
            warm = run_incremental_campaign(built, "ir", cfg, store)
        assert cold.simulated > 0
        assert warm.simulated == 0
        assert warm.cache_hits == len(warm.sections)
        assert cold.counts == warm.counts

    def test_edit_resimulates_only_changed_section(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        cfg = CampaignConfig(n_campaigns=40, seed=3)
        with SectionProfileStore(path) as store:
            run_incremental_campaign(_build(SRC), "ir", cfg, store)
        with SectionProfileStore(path) as store:
            after = run_incremental_campaign(
                _build(SRC_EDITED), "ir", cfg, store)
        by_name = {s.section.name: s for s in after.sections}
        assert by_name["scale"].cached
        assert by_name["scale"].simulated == 0
        assert not by_name["main"].cached
        assert by_name["main"].simulated > 0

    def test_torn_tail_and_uncommitted_rows_resume(self, tmp_path):
        """Rows fsync'd before a kill are replayed, not re-simulated;
        a torn trailing line is discarded; the resumed result matches
        an uninterrupted run bit-for-bit."""
        built = _build()
        path = str(tmp_path / "store.jsonl")
        cfg = CampaignConfig(n_campaigns=40, seed=3)
        with SectionProfileStore(path) as store:
            full = run_incremental_campaign(built, "ir", cfg, store)

        lines = open(path).read().splitlines(keepends=True)
        rows = [ln for ln in lines if '"ev": "row"' in ln]
        # drop every profile commit, keep half the rows, tear the tail
        kept = [ln for ln in lines if '"ev": "profile"' not in ln]
        kept = kept[: 1 + len(rows) // 2]
        kept.append('{"ev": "row", "k": "torn')      # no newline, cut off
        with open(path, "w") as fh:
            fh.writelines(kept)

        with SectionProfileStore(path) as store:
            assert not store.profiles
            assert store.partial
            resumed = run_incremental_campaign(built, "ir", cfg, store)
        assert resumed.replayed > 0
        assert resumed.simulated + resumed.replayed == full.n_total
        assert resumed.counts == full.counts
        for a, b in zip(full.sections, resumed.sections):
            assert a.profile.counts == b.profile.counts
            assert a.profile.key == b.profile.key

    def test_schema_mismatch_is_loud(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        with open(path, "w") as fh:
            fh.write('{"ev": "header", "version": 0, '
                     '"schema": "section-profile/0"}\n')
        with pytest.raises(CampaignError, match="schema"):
            SectionProfileStore(path)

    def test_key_varies_with_inputs(self):
        built = _build()
        sm_seu = map_sites(built, "ir", "seu")
        sm_cf = map_sites(built, "ir", "cf")
        sec = sm_seu.sections[0]
        base = dict(dispatch="decoded", protection={}, seed=0)
        k = profile_key(sec, sm_seu, **base)
        assert profile_key(sec, sm_seu, **base) == k
        assert profile_key(sec, sm_cf, **base) != k
        assert profile_key(
            sec, sm_seu, dispatch="codegen", protection={},
            seed=0) != k
        assert profile_key(
            sec, sm_seu, dispatch="decoded", protection={"level": 100},
            seed=0) != k
        assert profile_key(
            sec, sm_seu, dispatch="decoded", protection={},
            seed=1) != k
        assert profile_key(
            sec, sm_seu, dispatch="decoded", protection={},
            seed=0, exhaustive_bits=(0, 1)) != k


# -- composition statistics ---------------------------------------------


class TestStats:
    def test_wilson_basic(self):
        lo, hi = wilson_interval(5, 10)
        assert 0.0 < lo < 0.5 < hi < 1.0
        assert wilson_interval(0, 0) == (0.0, 1.0)
        assert wilson_interval(0, 50)[0] == 0.0
        assert wilson_interval(50, 50)[1] == 1.0
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_wilson_narrows_with_n(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(500, 1000)
        assert hi2 - lo2 < hi1 - lo1

    def test_composed_interval_single_section_is_binomial(self):
        p, lo, hi = composed_interval([1.0], [3], [10])
        assert p == pytest.approx(0.3)
        assert 0.0 <= lo < p < hi <= 1.0

    def test_composed_interval_empty_section_is_vacuous(self):
        p, lo, hi = composed_interval([1.0], [0], [0])
        assert p == pytest.approx(0.5)
        assert (lo, hi) == (0.0, 1.0)

    def test_allocate_proportional(self):
        alloc = _allocate(100, [750, 250])
        assert sum(alloc) == 100
        assert alloc == [75, 25]

    def test_allocate_min_one_per_live_section(self):
        alloc = _allocate(10, [1000, 1, 0])
        assert sum(alloc) == 10
        assert alloc[1] >= 1
        assert alloc[2] == 0

    def test_allocate_no_sites_is_loud(self):
        with pytest.raises(CampaignError):
            _allocate(10, [0, 0])

    def test_composed_summary_rates_sum_to_one(self, tmp_path):
        built = _build()
        res = run_incremental_campaign(
            built, "asm", CampaignConfig(n_campaigns=50, seed=1), None)
        s = res.summary()
        rates = [s[k] for k in ("sdc", "due", "detected", "benign")]
        assert sum(rates) == pytest.approx(1.0)
        for k in ("sdc", "due", "detected", "benign"):
            lo, hi = s[f"{k}_ci"]
            assert 0.0 <= lo <= s[k] <= hi <= 1.0


# -- determinism --------------------------------------------------------


class TestDeterminism:
    def test_same_seed_same_profiles(self):
        cfg = CampaignConfig(n_campaigns=30, seed=11)
        a = run_incremental_campaign(_build(), "ir", cfg, None)
        b = run_incremental_campaign(_build(), "ir", cfg, None)
        assert [s.profile.counts for s in a.sections] == \
            [s.profile.counts for s in b.sections]
        assert [s.profile.key for s in a.sections] == \
            [s.profile.key for s in b.sections]

    def test_seed_isolated_per_section(self, tmp_path):
        """An edit in one function must not change the samples (and so
        the cached profile key/result) of any other section."""
        cfg = CampaignConfig(n_campaigns=30, seed=11)
        a = run_incremental_campaign(_build(SRC), "ir", cfg, None)
        b = run_incremental_campaign(_build(SRC_EDITED), "ir", cfg, None)
        pa = {s.section.name: s.profile for s in a.sections}
        pb = {s.section.name: s.profile for s in b.sections}
        assert pa["scale"].key == pb["scale"].key
        assert pa["scale"].counts == pb["scale"].counts

    def test_cached_site_map_memoizes(self):
        built = _build()
        sm1 = cached_site_map(built, "ir", "seu")
        sm2 = cached_site_map(built, "ir", "seu")
        assert sm1 is sm2
        assert cached_site_map(built, "ir", "cf") is not sm1


# -- planner fast path --------------------------------------------------


class TestPlannerPath:
    def test_profile_module_reuses_golden_run(self):
        built = _build()
        from repro.protection.planner import _GOLDEN_CACHE

        p1 = profile_module(built.module, n_campaigns=10,
                            layout=built.layout)
        assert built.module in _GOLDEN_CACHE
        marker = _GOLDEN_CACHE[built.module]
        p2 = profile_module(built.module, n_campaigns=10,
                            layout=built.layout)
        assert _GOLDEN_CACHE[built.module] is marker
        assert p1.golden_output == p2.golden_output
        assert p1.sdc_counts == p2.sdc_counts

    def test_evaluate_protection_is_cached(self, tmp_path):
        built = _build()
        path = str(tmp_path / "store.jsonl")
        cfg = CampaignConfig(n_campaigns=30, seed=2)
        with SectionProfileStore(path) as store:
            cold = evaluate_protection(built, store, cfg)
            warm = evaluate_protection(built, store, cfg)
        assert cold.simulated > 0
        assert warm.simulated == 0
        assert cold.summary() == warm.summary()
