"""Integration tests for the paper's headline claims (DESIGN.md §6).

These run real fault-injection campaigns on two benchmarks at tiny
scale.  Campaign sizes are chosen so the qualitative claims are stable
under the fixed seed; the full-scale reproduction lives in
``benchmarks/``.
"""

import pytest

from repro.analysis.coverage import sdc_coverage
from repro.analysis.rootcause import Penetration, classify_campaign
from repro.fi.campaign import CampaignConfig, run_asm_campaign, run_ir_campaign
from repro.fi.outcomes import Outcome
from repro.pipeline import build

CFG = CampaignConfig(n_campaigns=250, seed=2023)
BENCH = "pathfinder"


@pytest.fixture(scope="module")
def raw():
    built = build(BENCH, scale="tiny")
    return (
        run_ir_campaign(built.module, CFG, built.layout),
        run_asm_campaign(built.compiled, built.layout, CFG),
    )


@pytest.fixture(scope="module")
def id_full():
    built = build(BENCH, scale="tiny", level=100)
    return built, (
        run_ir_campaign(built.module, CFG, built.layout),
        run_asm_campaign(built.compiled, built.layout, CFG),
    )


@pytest.fixture(scope="module")
def flowery_full():
    built = build(BENCH, scale="tiny", level=100, flowery=True)
    return built, (
        run_ir_campaign(built.module, CFG, built.layout),
        run_asm_campaign(built.compiled, built.layout, CFG),
    )


class TestObservation3AndGap:
    def test_ir_full_protection_near_perfect(self, raw, id_full):
        """Paper: at LLVM level, full duplication detects all SDCs."""
        raw_ir, _ = raw
        _, (prot_ir, _) = id_full
        cov = sdc_coverage(raw_ir.sdc_probability, prot_ir.sdc_probability)
        assert cov >= 0.97

    def test_asm_full_protection_falls_short(self, raw, id_full):
        """Paper Observation 3: 100% protection never reaches 100%
        coverage at assembly level."""
        _, raw_asm = raw
        _, (_, prot_asm) = id_full
        assert prot_asm.counts[Outcome.SDC] > 0
        cov = sdc_coverage(raw_asm.sdc_probability, prot_asm.sdc_probability)
        assert cov < 0.97

    def test_gap_direction(self, raw, id_full):
        """Paper Observation 2: assembly coverage < IR coverage."""
        raw_ir, raw_asm = raw
        _, (prot_ir, prot_asm) = id_full
        cov_ir = sdc_coverage(raw_ir.sdc_probability, prot_ir.sdc_probability)
        cov_asm = sdc_coverage(raw_asm.sdc_probability, prot_asm.sdc_probability)
        assert cov_ir > cov_asm


class TestRootCauses:
    def test_escapes_classify_into_paper_categories(self, id_full):
        built, (_, prot_asm) = id_full
        report = classify_campaign(
            BENCH, 100, prot_asm, built.module, built.asm,
            built.protection.dup_info,
        )
        assert report.total_deficiencies > 0
        # no "unprotected" cases at full protection
        assert report.counts.get(Penetration.UNPROTECTED, 0) == 0
        # the Flowery-fixable trio dominates (paper: 94.5%)
        shares = report.deficiency_shares()
        fixable = (
            shares.get(Penetration.STORE, 0)
            + shares.get(Penetration.BRANCH, 0)
            + shares.get(Penetration.COMPARISON, 0)
        )
        assert fixable >= 0.5


class TestFlowery:
    def test_flowery_improves_asm_coverage(self, raw, id_full, flowery_full):
        _, raw_asm = raw
        _, (_, id_asm) = id_full
        _, (_, fl_asm) = flowery_full
        cov_id = sdc_coverage(raw_asm.sdc_probability, id_asm.sdc_probability)
        cov_fl = sdc_coverage(raw_asm.sdc_probability, fl_asm.sdc_probability)
        assert cov_fl > cov_id

    def test_flowery_residuals_are_call_or_mapping(self, flowery_full):
        built, (_, fl_asm) = flowery_full
        report = classify_campaign(
            BENCH, 100, fl_asm, built.module, built.asm,
            built.protection.dup_info,
        )
        fixable = (
            report.counts.get(Penetration.STORE, 0)
            + report.counts.get(Penetration.BRANCH, 0)
            + report.counts.get(Penetration.COMPARISON, 0)
        )
        residual = (
            report.counts.get(Penetration.CALL, 0)
            + report.counts.get(Penetration.MAPPING, 0)
            + report.counts.get(Penetration.OTHER, 0)
        )
        assert fixable <= residual or report.total_escapes <= 2

    def test_flowery_overhead_is_bounded(self, id_full, flowery_full):
        _, (_, id_asm) = id_full
        _, (_, fl_asm) = flowery_full
        extra = (
            fl_asm.golden_dyn_total - id_asm.golden_dyn_total
        ) / id_asm.golden_dyn_total
        assert 0 <= extra < 1.0  # scalar dyn-instr proxy stays bounded

    def test_flowery_preserves_output(self, id_full, flowery_full):
        _, (id_ir, _) = id_full
        _, (fl_ir, _) = flowery_full
        assert id_ir.golden_output == fl_ir.golden_output
