"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "crc32" in out and "MiBench" in out

    def test_run(self, capsys):
        assert main(["run", "crc32", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "cross-layer outputs match: True" in out

    def test_ir_listing(self, capsys):
        assert main(["ir", "crc32", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "define i64 @main" in out

    def test_asm_listing(self, capsys):
        assert main(["asm", "crc32", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "main:" in out and "push" in out

    def test_protect_report(self, capsys):
        assert main(["protect", "crc32", "--scale", "tiny",
                     "--level", "100", "--flowery"]) == 0
        out = capsys.readouterr().out
        assert "checkers inserted" in out

    def test_inject_unprotected(self, capsys):
        assert main(["inject", "crc32", "--scale", "tiny", "-n", "30"]) == 0
        out = capsys.readouterr().out
        assert "sdc" in out

    def test_inject_protected_reports_coverage(self, capsys):
        assert main(["inject", "crc32", "--scale", "tiny",
                     "--level", "100", "-n", "40"]) == 0
        out = capsys.readouterr().out
        assert "coverage ASM" in out

    def test_bad_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "not-a-benchmark"])

    def test_experiment_compile_time(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCHMARKS", "crc32")
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["experiment", "compile-time"]) == 0
        assert "compile-time" in capsys.readouterr().out
