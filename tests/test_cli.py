"""Smoke tests for the command-line interface."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "crc32" in out and "MiBench" in out

    def test_run(self, capsys):
        assert main(["run", "crc32", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "cross-layer outputs match: True" in out

    def test_ir_listing(self, capsys):
        assert main(["ir", "crc32", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "define i64 @main" in out

    def test_asm_listing(self, capsys):
        assert main(["asm", "crc32", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "main:" in out and "push" in out

    def test_protect_report(self, capsys):
        assert main(["protect", "crc32", "--scale", "tiny",
                     "--level", "100", "--flowery"]) == 0
        out = capsys.readouterr().out
        assert "checkers inserted" in out

    def test_inject_unprotected(self, capsys):
        assert main(["inject", "crc32", "--scale", "tiny", "-n", "30"]) == 0
        out = capsys.readouterr().out
        assert "sdc" in out

    def test_inject_protected_reports_coverage(self, capsys):
        assert main(["inject", "crc32", "--scale", "tiny",
                     "--level", "100", "-n", "40"]) == 0
        out = capsys.readouterr().out
        assert "coverage ASM" in out

    def test_bad_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "not-a-benchmark"])

    def test_experiment_compile_time(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCHMARKS", "crc32")
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["experiment", "compile-time"]) == 0
        assert "compile-time" in capsys.readouterr().out


class TestTraceCommand:
    def test_golden_corun_agrees(self, capsys):
        assert main(["trace", "crc32", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "no divergence" in out

    def test_injected_fault_reports_divergence(self, capsys):
        assert main(["trace", "crc32", "--scale", "tiny", "--level", "100",
                     "--inject", "40", "--bit", "2", "--layer", "ir"]) == 0
        out = capsys.readouterr().out
        assert "injection: ir dynamic site #40" in out
        assert "DIVERGENCE" in out or "no divergence" in out

    def test_step_tail_and_jsonl(self, capsys, tmp_path):
        path = tmp_path / "traces.jsonl"
        assert main(["trace", "crc32", "--scale", "tiny",
                     "--mode", "ring", "--tail", "3",
                     "--jsonl", str(path)]) == 0
        out = capsys.readouterr().out
        assert "step records" in out
        lines = path.read_text().strip().split("\n")
        headers = [json.loads(ln) for ln in lines
                   if json.loads(ln)["ev"] == "trace"]
        assert {h["layer"] for h in headers} == {"ir", "asm"}


class TestStatsCommand:
    def test_serial_stats(self, capsys):
        assert main(["stats", "crc32", "--scale", "tiny", "-n", "20"]) == 0
        out = capsys.readouterr().out
        assert "phase timings" in out
        assert "golden" in out and "inject" in out
        assert "outcomes" in out and "sdc=" in out

    def test_stats_jsonl(self, capsys, tmp_path):
        path = tmp_path / "events.jsonl"
        assert main(["stats", "crc32", "--scale", "tiny", "-n", "10",
                     "--layer", "ir", "--jsonl", str(path)]) == 0
        rows = [json.loads(ln) for ln in
                path.read_text().strip().split("\n")]
        kinds = {r["ev"] for r in rows}
        assert {"phase", "outcome"} <= kinds
        outcome = [r for r in rows if r["ev"] == "outcome"][0]
        assert outcome["total"] == 10

    def test_stats_journal_then_resume(self, capsys, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        assert main(["stats", "crc32", "--scale", "tiny", "-n", "10",
                     "--workers", "1", "--journal", str(journal)]) == 0
        first = capsys.readouterr().out
        assert "sdc=" in first
        assert len(journal.read_text().splitlines()) == 11  # header+rows
        assert main(["resume", str(journal), "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "resuming" in out and "10/10 samples journaled" in out
        assert "resumed from journal: 10 samples skipped" in out
        # both runs report the same outcome line
        assert first.splitlines()[-1] == out.splitlines()[-1]

    def test_resume_missing_journal_raises(self, tmp_path):
        from repro.errors import CampaignError

        with pytest.raises(CampaignError):
            main(["resume", str(tmp_path / "absent.jsonl")])


def _run_cli(*argv):
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(root, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, cwd=root, timeout=300,
    )


@pytest.mark.slow
class TestCliEntryPoint:
    """The installed surface: ``python -m repro.cli`` in a subprocess."""

    def test_list(self):
        proc = _run_cli("list")
        assert proc.returncode == 0
        assert "crc32" in proc.stdout

    def test_run(self):
        proc = _run_cli("run", "crc32", "--scale", "tiny")
        assert proc.returncode == 0
        assert "cross-layer outputs match: True" in proc.stdout

    def test_trace(self):
        proc = _run_cli("trace", "crc32", "--scale", "tiny")
        assert proc.returncode == 0
        assert "no divergence" in proc.stdout

    def test_stats(self):
        proc = _run_cli("stats", "crc32", "--scale", "tiny", "-n", "10")
        assert proc.returncode == 0
        assert "phase timings" in proc.stdout

    def test_usage_error_is_nonzero(self):
        proc = _run_cli("trace")
        assert proc.returncode != 0
        assert "usage" in proc.stderr.lower()
