"""Tests for IR value kinds."""

import pytest

from repro.errors import IRTypeError
from repro.ir import types as T
from repro.ir.values import (
    Constant,
    GlobalVariable,
    const_bool,
    const_float,
    const_int,
)


class TestConstants:
    def test_const_int_wraps(self):
        assert const_int(1 << 63).value == -(1 << 63)
        assert const_int(-1).value == -1

    def test_const_int_width(self):
        c = const_int(300, T.I8)
        assert c.value == 44  # 300 mod 256, signed

    def test_const_float(self):
        assert const_float(2) .value == 2.0
        assert isinstance(const_float(2).value, float)

    def test_const_bool(self):
        assert const_bool(True).value == 1
        assert const_bool(False).value == 0
        assert const_bool(True).type is T.I1

    def test_type_mismatch(self):
        with pytest.raises(IRTypeError):
            Constant(T.I64, 1.5)
        with pytest.raises(IRTypeError):
            Constant(T.VOID, 0)

    def test_short_forms(self):
        assert const_int(5).short() == "5"
        assert const_float(1.5).short() == "1.5"


class TestGlobals:
    def test_global_type_is_pointer(self):
        g = GlobalVariable("g", T.I64, 42)
        assert g.type is T.ptr(T.I64)
        assert g.value_type is T.I64

    def test_scalar_initializer(self):
        assert GlobalVariable("g", T.I64, 42).flat_initializer() == [42]
        assert GlobalVariable("g", T.I64).flat_initializer() == [0]
        assert GlobalVariable("g", T.F64).flat_initializer() == [0.0]

    def test_array_initializer_padded(self):
        g = GlobalVariable("g", T.array(T.I64, 4), [1, 2])
        assert g.flat_initializer() == [1, 2, 0, 0]

    def test_array_initializer_overflow(self):
        g = GlobalVariable("g", T.array(T.I64, 2), [1, 2, 3])
        with pytest.raises(IRTypeError):
            g.flat_initializer()

    def test_nested_initializer_flattens(self):
        g = GlobalVariable("g", T.array(T.I64, 4), [[1, 2], [3, 4]])
        assert g.flat_initializer() == [1, 2, 3, 4]

    def test_volatile_flag(self):
        g = GlobalVariable("g", T.I64, 1, volatile=True)
        assert g.volatile

    def test_invalid_global_type(self):
        with pytest.raises(IRTypeError):
            GlobalVariable("g", T.VOID)

    def test_short(self):
        assert GlobalVariable("data", T.I64).short() == "@data"
