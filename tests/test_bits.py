"""Unit + property tests for bit-level helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils import bits


class TestMasksAndConversions:
    def test_mask_widths(self):
        assert bits.mask(1) == 1
        assert bits.mask(8) == 0xFF
        assert bits.mask(32) == 0xFFFFFFFF
        assert bits.mask(64) == (1 << 64) - 1

    def test_to_unsigned_negative(self):
        assert bits.to_unsigned(-1, 8) == 0xFF
        assert bits.to_unsigned(-1, 64) == (1 << 64) - 1

    def test_to_signed_msb(self):
        assert bits.to_signed(0x80, 8) == -128
        assert bits.to_signed(0x7F, 8) == 127

    def test_wrap_signed_overflow(self):
        assert bits.wrap_signed(128, 8) == -128
        assert bits.wrap_signed(-129, 8) == 127
        assert bits.wrap_signed(1 << 63, 64) == -(1 << 63)

    @given(st.integers(), st.sampled_from([1, 8, 16, 32, 64]))
    def test_signed_unsigned_roundtrip(self, value, width):
        wrapped = bits.wrap_signed(value, width)
        assert bits.to_signed(bits.to_unsigned(wrapped, width), width) == wrapped

    @given(st.integers(), st.sampled_from([8, 16, 32, 64]))
    def test_wrap_signed_in_range(self, value, width):
        w = bits.wrap_signed(value, width)
        assert -(1 << (width - 1)) <= w < (1 << (width - 1))


class TestIntBitFlips:
    def test_flip_lsb(self):
        assert bits.flip_int_bit(0, 0, 64) == 1
        assert bits.flip_int_bit(1, 0, 64) == 0

    def test_flip_sign_bit(self):
        assert bits.flip_int_bit(0, 63, 64) == -(1 << 63)

    def test_flip_out_of_range(self):
        with pytest.raises(ValueError):
            bits.flip_int_bit(0, 64, 64)
        with pytest.raises(ValueError):
            bits.flip_int_bit(0, -1, 64)

    @given(st.integers(-(1 << 63), (1 << 63) - 1), st.integers(0, 63))
    def test_flip_is_involution(self, value, bit):
        once = bits.flip_int_bit(value, bit, 64)
        assert once != value
        assert bits.flip_int_bit(once, bit, 64) == value

    @given(st.integers(0, 0), st.integers(0, 0))
    def test_flip_i1(self, value, bit):
        assert bits.flip_int_bit(value, bit, 1) == -1  # i1: 1 -> signed -1


class TestFloatBits:
    def test_roundtrip_simple(self):
        for v in (0.0, 1.5, -2.25, 1e300, -1e-300):
            assert bits.bits_to_float(bits.float_to_bits(v)) == v

    def test_nan_pattern(self):
        assert math.isnan(bits.bits_to_float(0x7FF8000000000000))

    def test_flip_sign(self):
        assert bits.flip_float_bit(1.0, 63) == -1.0

    @given(st.floats(allow_nan=False), st.integers(0, 63))
    def test_flip_is_involution(self, value, bit):
        once = bits.flip_float_bit(value, bit)
        back = bits.flip_float_bit(once, bit)
        assert bits.float_to_bits(back) == bits.float_to_bits(value)

    def test_flip_out_of_range(self):
        with pytest.raises(ValueError):
            bits.flip_float_bit(1.0, 64)


class TestExtensions:
    def test_sign_extend_preserves_value(self):
        assert bits.sign_extend(-5, 8, 64) == -5
        assert bits.sign_extend(100, 8, 64) == 100

    def test_zero_extend_reinterprets(self):
        assert bits.zero_extend(-1, 8, 64) == 255

    def test_truncate(self):
        assert bits.truncate(0x1FF, 8) == -1
        assert bits.truncate(5, 8) == 5

    def test_narrowing_raises(self):
        with pytest.raises(ValueError):
            bits.sign_extend(0, 64, 8)
        with pytest.raises(ValueError):
            bits.zero_extend(0, 64, 8)

    @given(st.integers(-(1 << 31), (1 << 31) - 1))
    def test_extend_truncate_roundtrip(self, value):
        assert bits.truncate(bits.sign_extend(value, 32, 64), 32) == value
