"""Tests for the interned IR type system."""

import pytest

from repro.errors import IRTypeError
from repro.ir import types as T


class TestInterning:
    def test_int_types_are_singletons(self):
        assert T.int_type(32) is T.I32
        assert T.int_type(64) is T.I64

    def test_pointer_interning(self):
        assert T.ptr(T.I64) is T.ptr(T.I64)
        assert T.ptr(T.I64) is not T.ptr(T.I32)

    def test_array_interning(self):
        assert T.array(T.I64, 8) is T.array(T.I64, 8)
        assert T.array(T.I64, 8) is not T.array(T.I64, 9)

    def test_function_type_interning(self):
        a = T.function_type(T.I64, [T.I64, T.F64])
        b = T.function_type(T.I64, [T.I64, T.F64])
        assert a is b


class TestProperties:
    def test_sizes(self):
        assert T.I1.size == 1
        assert T.I8.size == 1
        assert T.I32.size == 4
        assert T.I64.size == 8
        assert T.F64.size == 8
        assert T.ptr(T.I64).size == 8
        assert T.array(T.I32, 10).size == 40

    def test_bits(self):
        assert T.I1.bits == 1
        assert T.F64.bits == 64
        assert T.ptr(T.F64).bits == 64

    def test_void_has_no_bits(self):
        with pytest.raises(IRTypeError):
            T.VOID.bits

    def test_predicates(self):
        assert T.I64.is_integer and T.I64.is_scalar
        assert T.F64.is_float and not T.F64.is_integer
        assert T.ptr(T.I64).is_pointer and T.ptr(T.I64).is_scalar
        assert T.VOID.is_void and not T.VOID.is_scalar
        assert T.array(T.I64, 2).is_array

    def test_nested_array_flattening(self):
        nested = T.array(T.array(T.F64, 3), 4)
        assert nested.size == 96
        assert nested.flattened_element is T.F64

    def test_str_forms(self):
        assert str(T.I64) == "i64"
        assert str(T.F64) == "f64"
        assert str(T.ptr(T.I32)) == "i32*"
        assert str(T.array(T.I64, 4)) == "[4 x i64]"


class TestInvalid:
    def test_bad_int_width(self):
        with pytest.raises(IRTypeError):
            T.IntType(7)
        with pytest.raises(IRTypeError):
            T.int_type(128)

    def test_pointer_to_void(self):
        with pytest.raises(IRTypeError):
            T.PointerType(T.VOID)

    def test_empty_array(self):
        with pytest.raises(IRTypeError):
            T.ArrayType(T.I64, 0)
