"""Unit + property tests for the shared simulated memory."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimTrap
from repro.memorymodel import GLOBAL_BASE, Memory


@pytest.fixture
def mem():
    return Memory(global_size=256, heap_size=4096, stack_size=4096)


class TestLayout:
    def test_segments_are_ordered(self, mem):
        assert GLOBAL_BASE == mem.global_base
        assert mem.global_base < mem.global_end <= mem.heap_base
        assert mem.heap_base < mem.heap_end == mem.stack_limit
        assert mem.stack_limit < mem.stack_base == mem.size

    def test_null_page_unmapped(self, mem):
        with pytest.raises(SimTrap) as exc:
            mem.read_int(0, 8)
        assert exc.value.kind == "segfault"

    def test_oob_high(self, mem):
        with pytest.raises(SimTrap):
            mem.read_int(mem.size - 4, 8)

    def test_in_stack(self, mem):
        assert mem.in_stack(mem.stack_base - 8)
        assert not mem.in_stack(mem.heap_base)


class TestScalarAccess:
    def test_int_roundtrip_signed(self, mem):
        mem.write_int(GLOBAL_BASE, -12345, 8)
        assert mem.read_int(GLOBAL_BASE, 8) == -12345

    def test_int_roundtrip_unsigned_view(self, mem):
        mem.write_int(GLOBAL_BASE, -1, 8)
        assert mem.read_int(GLOBAL_BASE, 8, signed=False) == (1 << 64) - 1

    def test_byte_access(self, mem):
        mem.write_int(GLOBAL_BASE, 0x7F, 1)
        assert mem.read_int(GLOBAL_BASE, 1) == 0x7F
        mem.write_int(GLOBAL_BASE, 0xFF, 1)
        assert mem.read_int(GLOBAL_BASE, 1) == -1
        assert mem.read_int(GLOBAL_BASE, 1, signed=False) == 255

    def test_f64_roundtrip(self, mem):
        mem.write_f64(GLOBAL_BASE + 8, 3.14159)
        assert mem.read_f64(GLOBAL_BASE + 8) == 3.14159

    def test_little_endian(self, mem):
        mem.write_int(GLOBAL_BASE, 0x0102030405060708, 8)
        assert mem.read_int(GLOBAL_BASE, 1, signed=False) == 0x08

    @given(st.integers(-(1 << 63), (1 << 63) - 1))
    def test_i64_roundtrip_property(self, value):
        m = Memory(global_size=64)
        m.write_int(GLOBAL_BASE, value, 8)
        assert m.read_int(GLOBAL_BASE, 8) == value

    @given(st.floats(allow_nan=False))
    def test_f64_roundtrip_property(self, value):
        m = Memory(global_size=64)
        m.write_f64(GLOBAL_BASE, value)
        assert m.read_f64(GLOBAL_BASE) == value


class TestBulkAccess:
    def test_bytes_roundtrip(self, mem):
        mem.write_bytes(GLOBAL_BASE, b"hello world")
        assert mem.read_bytes(GLOBAL_BASE, 11) == b"hello world"

    def test_bulk_oob(self, mem):
        with pytest.raises(SimTrap):
            mem.write_bytes(mem.size - 4, b"too long")


class TestSbrk:
    def test_bump_allocation(self, mem):
        a = mem.sbrk(100)
        b = mem.sbrk(100)
        assert a >= mem.heap_base
        assert b >= a + 100
        assert b % 16 == 0

    def test_oom(self, mem):
        with pytest.raises(SimTrap) as exc:
            mem.sbrk(1 << 30)
        assert exc.value.kind == "oom"
