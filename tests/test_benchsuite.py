"""Tests for the 16-benchmark suite."""

import pytest

from repro.benchsuite.registry import (
    BENCHMARKS,
    SCALES,
    benchmark_names,
    get_benchmark,
    load_source,
)
from repro.errors import ReproError
from repro.execresult import RunStatus
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import run_ir

from tests.helpers import compile_and_build
from repro.machine.machine import run_asm


class TestRegistry:
    def test_sixteen_benchmarks(self):
        assert len(benchmark_names()) == 16

    def test_paper_suites_present(self):
        suites = {b.suite for b in BENCHMARKS.values()}
        assert suites == {"Rodinia", "NPB", "MiBench"}

    def test_paper_di_counts_recorded(self):
        assert BENCHMARKS["ep"].paper_di_millions == 4904.50
        assert BENCHMARKS["pathfinder"].paper_di_millions == 0.6

    def test_unknown_benchmark(self):
        with pytest.raises(ReproError):
            get_benchmark("nope")
        with pytest.raises(ReproError):
            load_source("nope")

    def test_unknown_scale(self):
        with pytest.raises(ReproError):
            load_source("crc32", "gigantic")


@pytest.mark.parametrize("name", benchmark_names())
class TestEveryBenchmark:
    def test_compiles_and_runs(self, name):
        src = load_source(name, "tiny")
        module = compile_source(src, name)
        res = run_ir(module)
        assert res.status is RunStatus.OK, (res.status, res.trap_kind)
        assert res.output  # all benchmarks print verification values

    def test_cross_layer_outputs_match(self, name):
        src = load_source(name, "tiny")
        module, layout, asm, compiled = compile_and_build(src, name)
        ir = run_ir(module, layout=layout)
        machine = run_asm(compiled, layout)
        assert machine.status is RunStatus.OK
        assert machine.output == ir.output

    def test_deterministic_source(self, name):
        assert load_source(name, "tiny") == load_source(name, "tiny")

    def test_scales_grow(self, name):
        tiny = compile_source(load_source(name, "tiny"), name)
        small = compile_source(load_source(name, "small"), name)
        t = run_ir(tiny).dyn_total
        s = run_ir(small).dyn_total
        assert s > t


class TestWorkloadShapes:
    def test_bfs_reaches_nodes(self):
        module = compile_source(load_source("bfs", "tiny"))
        out = run_ir(module).output.strip().split("\n")
        reached = int(out[-2])
        assert reached > 1

    def test_quicksort_sorts(self):
        module = compile_source(load_source("quicksort", "tiny"))
        lines = run_ir(module).output.strip().split("\n")
        values = [int(x) for x in lines[:-1]]
        assert values == sorted(values)

    def test_is_ranks_are_permutation(self):
        module = compile_source(load_source("is", "tiny"))
        lines = run_ir(module).output.strip().split("\n")
        ranks = [int(x) for x in lines[:-1]]
        assert sorted(ranks) == list(range(len(ranks)))

    def test_crc32_known_value(self):
        module = compile_source(load_source("crc32", "tiny"))
        out = int(run_ir(module).output.strip())
        # cross-check against binascii on the same bytes
        import binascii

        from repro.benchsuite.programs._data import rng

        data = bytes(int(b) for b in rng(141).integers(0, 256, 6))
        assert out == binascii.crc32(data)

    def test_stringsearch_finds_patterns(self):
        module = compile_source(load_source("stringsearch", "tiny"))
        out = [int(x) for x in run_ir(module).output.strip().split("\n")]
        text, patterns = "the quick brown fox", ["quick", "fox", "dog"]
        expected = [text.find(p) for p in patterns]
        assert out == expected

    def test_lud_factorisation_valid(self):
        # trace of U equals printed trace; reconstruct via numpy
        import numpy as np

        from repro.benchsuite.programs._data import rng

        module = compile_source(load_source("lud", "tiny"))
        out = run_ir(module).output.strip().split("\n")
        trace = float(out[0])
        g = rng(404)
        a = g.uniform(-1.0, 1.0, (3, 3))
        for i in range(3):
            a[i, i] = 3.0 + abs(a[i]).sum()
        import scipy.linalg as la

        p, l, u = la.lu(a)
        # no pivoting in the kernel; matrix is diagonally dominant so
        # P = I and our U trace should match numpy's
        assert trace == pytest.approx(np.trace(u), rel=1e-4)

    def test_patricia_hits_expected(self):
        module = compile_source(load_source("patricia", "tiny"))
        out = run_ir(module).output.strip().split("\n")
        hits = int(out[-2])
        lookups = len(out) - 2
        assert 0 < hits <= lookups

    def test_fft_peak_at_signal_frequency(self):
        module = compile_source(load_source("fft2", "tiny"))
        mags = [float(x) for x in run_ir(module).output.strip().split("\n")]
        # the embedded signal is a sine at bin 3 plus noise
        assert mags.index(max(mags)) == 3
