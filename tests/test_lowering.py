"""Tests for IR -> assembly lowering: structure, roles, penetrations."""

import pytest

from repro.backend.isa import Role
from repro.backend.lower import LoweringOptions, lower_module
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import run_ir
from repro.interp.layout import GlobalLayout
from repro.machine.machine import compile_program, run_asm
from repro.protection.duplication import duplicate_module

from tests.helpers import compile_and_build


def roles_of(asm, fn="main"):
    return [(i.opcode, i.role) for i in asm.functions[fn].insts]


class TestFrameCode:
    def test_prologue_epilogue(self, sink_built):
        _, _, asm, _ = sink_built
        insts = asm.functions["main"].insts
        assert insts[0].opcode == "push" and insts[0].role == Role.FRAME
        assert insts[1].opcode == "mov" and insts[1].role == Role.FRAME
        assert insts[2].opcode == "sub"
        assert insts[-1].opcode == "ret"
        assert insts[-2].opcode == "pop"

    def test_arg_spills_after_prologue(self):
        src = ("int f(int a, int b) { return a + b; } "
               "int main() { print(f(1, 2)); return 0; }")
        _, _, asm, _ = compile_and_build(src)
        spills = [i for i in asm.functions["f"].insts
                  if i.role == Role.ARG_SPILL]
        assert len(spills) == 2
        # spills write memory -> not injection sites
        assert all(not s.is_injectable for s in spills)


class TestCallLowering:
    def test_call_args_tagged(self):
        src = ("int f(int a, int b) { return a + b; } "
               "int main() { int x = 3; print(f(x, 4)); return 0; }")
        _, _, asm, _ = compile_and_build(src)
        call_args = [i for i in asm.functions["main"].insts
                     if i.role == Role.CALL_ARG]
        # f's two args plus print's argument
        assert len(call_args) >= 3
        assert all(i.is_injectable for i in call_args)

    def test_arg_registers_in_order(self):
        src = ("int f(int a, int b, int c) { return a + b + c; } "
               "int main() { print(f(1, 2, 3)); return 0; }")
        _, _, asm, _ = compile_and_build(src)
        arg_movs = [i for i in asm.functions["main"].insts
                    if i.role == Role.CALL_ARG][:3]
        assert [i.operands[0].name for i in arg_movs] == ["rdi", "rsi", "rdx"]

    def test_float_args_in_xmm(self):
        src = ("float f(float a) { return a * 2.0; } "
               "int main() { print(f(1.5)); return 0; }")
        _, _, asm, _ = compile_and_build(src)
        fp_args = [i for i in asm.functions["main"].insts
                   if i.role == Role.CALL_ARG and i.opcode == "movsd"]
        assert fp_args and fp_args[0].operands[0].name == "xmm0"


class TestBranchLowering:
    def test_adjacent_icmp_uses_flags_directly(self):
        # unprotected: icmp feeds condbr in the same block -> no test
        src = "int main() { int x = 3; if (x < 5) { print(1); } return 0; }"
        _, _, asm, _ = compile_and_build(src)
        br_tests = [i for i in asm.functions["main"].insts
                    if i.role == Role.BR_TEST]
        assert not br_tests

    def test_checker_forces_branch_test(self):
        # protected: checker between icmp and condbr -> test emitted
        src = "int main() { int x = 3; if (x < 5) { print(1); } return 0; }"
        module = compile_source(src)
        duplicate_module(module)
        asm = lower_module(module)
        br_tests = [i for i in asm.functions["main"].insts
                    if i.role == Role.BR_TEST]
        assert br_tests, "branch penetration sites must appear"
        assert all(i.dest_kind() == "flags" for i in br_tests)


class TestStoreLowering:
    def test_same_block_store_uses_cached_register(self):
        # def and store in one block: no store-reload
        src = "int g = 0; int main() { g = 1 + 2; return 0; }"
        _, _, asm, _ = compile_and_build(src)
        reloads = [i for i in asm.functions["main"].insts
                   if i.role == Role.STORE_RELOAD]
        assert not reloads

    def test_checker_forces_store_reload(self):
        src = "int g = 0; int main() { int x = 1; g = x + 2; return 0; }"
        module = compile_source(src)
        duplicate_module(module, store_mode="lazy")
        asm = lower_module(module)
        reloads = [i for i in asm.functions["main"].insts
                   if i.role == Role.STORE_RELOAD]
        assert reloads, "store penetration sites must appear under lazy mode"
        assert all(i.is_injectable for i in reloads)

    def test_eager_mode_removes_store_reload(self):
        src = "int g = 0; int main() { int x = 1; g = x + 2; return 0; }"
        module = compile_source(src)
        duplicate_module(module, store_mode="eager")
        asm = lower_module(module)
        reloads = [i for i in asm.functions["main"].insts
                   if i.role == Role.STORE_RELOAD]
        assert not reloads, "eager store must keep the value in a register"

    def test_constant_store_is_immediate(self):
        src = "int g = 0; int main() { g = 7; return 0; }"
        _, _, asm, _ = compile_and_build(src)
        movs = [i for i in asm.functions["main"].insts
                if i.opcode == "mov" and i.role == Role.MAIN]
        assert any(
            not i.is_injectable for i in movs
        ), "store of a constant should be mov imm -> mem"


class TestComparisonFolding:
    def _protected_cmp_module(self):
        # compare of two plain variables: duplicated icmps over unified
        # loads -> checker folds (comparison penetration)
        src = """
int a = 1;
int b = 2;
int main() { if (a < b) { print(1); } else { print(2); } return 0; }
"""
        module = compile_source(src)
        duplicate_module(module)
        return module

    def test_checker_folds_by_default(self):
        module = self._protected_cmp_module()
        asm = lower_module(module)
        assert asm.folded_checkers, "the compare checker must fold"
        jmps = [i for i in asm.functions["main"].insts
                if i.role == Role.FOLDED_CHECKER_JMP]
        assert jmps

    def test_single_setcc_survives(self):
        module = self._protected_cmp_module()
        asm = lower_module(module)
        setccs = [i for i in asm.functions["main"].insts
                  if i.opcode == "setcc"]
        # master + checker would be 2+; folding leaves exactly the master
        assert len(setccs) == 1

    def test_cse_disable_keeps_checker(self):
        module = self._protected_cmp_module()
        asm = lower_module(module, options=LoweringOptions(compare_cse=False))
        assert not asm.folded_checkers

    def test_arith_checkers_never_fold(self):
        src = """
int a = 1;
int g = 0;
int main() { int x = a + 2; g = x; return 0; }
"""
        module = compile_source(src)
        duplicate_module(module)
        asm = lower_module(module)
        assert not asm.folded_checkers

    def test_store_breaks_load_availability(self):
        # a store between the compares invalidates the load value numbers
        src = """
int a = 1;
int b = 2;
int main() {
    int c1 = a < b;
    a = 5;
    int c2 = a < b;
    print(c1 + c2);
    return 0;
}
"""
        module = compile_source(src)
        asm = lower_module(module)
        setccs = [i for i in asm.functions["main"].insts
                  if i.opcode == "setcc"]
        assert len(setccs) == 2  # both compares emitted


class TestCrossLayerEquivalence:
    PROGRAMS = [
        "int main() { print(1 + 2 * 3); return 0; }",
        "int main() { int x = -5; print(x / 2); print(x % 2); return 0; }",
        "int main() { int s = 0; for (int i = 0; i < 7; i++) { s += i; } print(s); return 0; }",
        "int g[4] = {9, 8, 7, 6}; int main() { print(g[1] + g[2]); return 0; }",
        "int main() { float f = 1.0; print(f / 3.0); print(sqrt(2.0)); return 0; }",
        "int f(int n) { if (n <= 0) { return 1; } return n * f(n - 1); } int main() { print(f(6)); return 0; }",
        "int main() { print(3 < 4 && 4 < 3); print(1 << 20); return 0; }",
        "int main() { int x = 100; while (x > 1) { if (x % 2 == 0) { x /= 2; } else { x = 3 * x + 1; } print(x); } return 0; }",
    ]

    @pytest.mark.parametrize("src", PROGRAMS)
    def test_outputs_identical(self, src):
        module, layout, asm, compiled = compile_and_build(src)
        ir = run_ir(module, layout=layout)
        machine = run_asm(compiled, layout)
        assert ir.status.value == "ok"
        assert machine.status.value == "ok"
        assert machine.output == ir.output

    @pytest.mark.parametrize("src", PROGRAMS)
    def test_protected_outputs_identical(self, src):
        module = compile_source(src)
        golden = run_ir(module)
        duplicate_module(module)
        layout = GlobalLayout(module)
        asm = lower_module(module, layout)
        compiled = compile_program(asm.flatten())
        ir = run_ir(module, layout=layout)
        machine = run_asm(compiled, layout)
        assert ir.output == golden.output
        assert machine.output == golden.output


class TestProvenance:
    def test_every_instruction_has_role(self, sink_built):
        _, _, asm, _ = sink_built
        for fn in asm.functions.values():
            for inst in fn.insts:
                assert inst.role

    def test_computation_has_ir_provenance(self, sink_built):
        _, _, asm, _ = sink_built
        for fn in asm.functions.values():
            for inst in fn.insts:
                if inst.role in (Role.MAIN, Role.MAIN_COPY,
                                 Role.OPERAND_RELOAD, Role.RESULT_SPILL):
                    assert inst.prov_iid is not None

    def test_asm_expansion_factor(self, sink_built):
        module, _, asm, _ = sink_built
        ir_static = module.static_instruction_count()
        asm_static = asm.static_count()
        assert asm_static > ir_static  # lowering always expands


class TestText:
    def test_listing_renders(self, sink_built):
        _, _, asm, _ = sink_built
        text = asm.text()
        assert "main:" in text
        assert "push" in text
        assert "ir=%t" in text
