"""Tests for the testgen subsystem: generators, oracle, mutants, shrinker.

Validates the validators: the generators must be deterministic and
legal, the differential oracle must pass on the un-mutated pipeline,
and the mutation harness must kill a known-weakened checker while
never killing the identity rebuild (zero false kills).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import CampaignError
from repro.execresult import RunStatus
from repro.frontend.codegen import compile_source
from repro.fi.chaos import shrink_case
from repro.interp.interpreter import run_ir
from repro.interp.layout import GlobalLayout
from repro.backend.lower import lower_module
from repro.ir.instructions import Call, CondBr, Ret, Store
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.machine.machine import compile_program, run_asm
from repro.protection.duplication import (
    duplicable_instructions,
    duplicate_module,
    sync_kind,
)
from repro.protection.planner import (
    ProtectionPlan,
    plan_protection,
    profile_module,
    validate_plan,
)
from repro.testgen import (
    generate_ir,
    generate_minic,
    minimize_minic,
    partial_selection,
    run_differential_oracle,
    run_mutation_suite,
)
from repro.testgen.minic import GenConfig, render_minic
from repro.testgen.strategies import SEED_RANGE, minic_programs

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# -- generator determinism ----------------------------------------------


def test_minic_generation_is_deterministic():
    for seed in (0, 1, 7, 123, 99999):
        a, b = generate_minic(seed), generate_minic(seed)
        assert a == b
        assert a.source == b.source
    assert generate_minic(3).source != generate_minic(4).source


def test_irgen_is_deterministic():
    for seed in (0, 5, 4242):
        assert print_module(generate_ir(seed)) == print_module(
            generate_ir(seed))
    assert print_module(generate_ir(1)) != print_module(generate_ir(2))


def test_minic_config_changes_output():
    tiny = GenConfig(n_functions=(0, 0), n_main_stmts=(1, 2))
    assert generate_minic(8, tiny).source != generate_minic(8).source


# -- generator legality -------------------------------------------------


@pytest.mark.parametrize("seed", range(12))
def test_generated_minic_runs_clean_at_both_layers(seed):
    """Every generated program terminates OK within default containment
    budgets at both layers, with matching output."""
    module = compile_source(generate_minic(seed).source, f"gen{seed}")
    layout = GlobalLayout(module)
    compiled = compile_program(lower_module(module, layout).flatten())
    ir = run_ir(module, layout=layout)
    asm = run_asm(compiled, layout)
    assert ir.status is RunStatus.OK
    assert asm.status is RunStatus.OK
    assert asm.output == ir.output


@pytest.mark.parametrize("seed", range(8))
def test_generated_ir_verifies_and_runs_clean(seed):
    module = generate_ir(seed)
    verify_module(module)
    layout = GlobalLayout(module)
    compiled = compile_program(lower_module(module, layout).flatten())
    ir = run_ir(module, layout=layout)
    asm = run_asm(compiled, layout)
    assert ir.status is RunStatus.OK
    assert asm.status is RunStatus.OK
    assert asm.output == ir.output


@_SETTINGS
@given(minic_programs())
def test_strategies_wrap_the_deterministic_generator(prog):
    """A strategy draw is exactly the generator's output for its seed."""
    assert prog == generate_minic(prog.seed, prog.config)
    assert prog.source == render_minic(prog)


@pytest.mark.parametrize("seed", (0, 3, 9))
def test_generated_programs_match_on_codegen_tier(seed):
    """Generated programs run bit-identically on the codegen dispatch
    tier at both layers (full result signature, not just output)."""
    module = compile_source(generate_minic(seed).source, f"cg{seed}")
    layout = GlobalLayout(module)
    compiled = compile_program(lower_module(module, layout).flatten())

    def _sig(res):
        return (res.status, res.output, res.dyn_total, res.dyn_injectable)

    assert _sig(run_ir(module, layout=layout, dispatch="codegen")) == \
        _sig(run_ir(module, layout=layout, dispatch="decoded"))
    assert _sig(run_asm(compiled, layout, dispatch="codegen")) == \
        _sig(run_asm(compiled, layout, dispatch="decoded"))


# -- differential oracle ------------------------------------------------


@pytest.mark.parametrize("seed", (2, 13))
def test_oracle_matrix_passes_on_generated_minic(seed):
    prog = generate_minic(seed)
    report = run_differential_oracle(
        lambda: compile_source(prog.source, f"oracle{seed}"),
        name=f"minic-{seed}")
    assert report.ok, [f.describe() for f in report.failures]
    assert report.runs == 48  # 8 variants x 2 layers x 3 dispatches


def test_oracle_matrix_passes_on_generated_ir():
    report = run_differential_oracle(lambda: generate_ir(5), name="ir-5")
    assert report.ok, [f.describe() for f in report.failures]
    doc = report.to_doc()
    assert doc["ok"] and doc["runs"] == report.runs


def test_partial_selection_is_deterministic_subset():
    module = compile_source(generate_minic(4).source, "psel")
    all_iids = {i.iid for i in duplicable_instructions(module)}
    sel = partial_selection(module, 0.5, seed=0)
    assert sel == partial_selection(module, 0.5, seed=0)
    assert sel <= all_iids
    assert len(sel) == round(len(all_iids) * 0.5)
    assert sel != partial_selection(module, 0.5, seed=1)


# -- mutation harness ---------------------------------------------------


def test_mutation_regression_weakened_checker_is_killed():
    """The canonical regression: dropping store checkers must be caught
    by the coverage oracle, an inverted checker by the golden oracle,
    and the untouched pipeline must survive (zero false kills)."""
    report = run_mutation_suite(names=(
        "dup-drop-store-checkers",
        "dup-checker-inverted",
        "identity-dup",
    ))
    by_name = {r.name: r for r in report.results}
    assert by_name["dup-drop-store-checkers"].killed
    assert by_name["dup-drop-store-checkers"].killed_by == "coverage"
    assert by_name["dup-checker-inverted"].killed
    assert by_name["dup-checker-inverted"].killed_by == "golden"
    assert not by_name["identity-dup"].killed
    assert report.ok and not report.survivors and not report.false_kills
    doc = report.to_doc()
    assert doc["schema"] == "mutate/1"
    assert doc["summary"]["ok"]


def test_mutation_suite_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown mutants"):
        run_mutation_suite(names=("no-such-mutant",))


def test_mutation_cfc_weakenings_are_killed():
    """Every CFC weakening must die — dropped updates by the golden
    oracle (fault-free false detect), the coverage weakenings by a
    cf-fault detection drop — while the unmutated CFC pipeline
    survives a cf sweep bit-exactly."""
    report = run_mutation_suite(names=(
        "cfc-dropped-update",
        "cfc-unchecked-backedge",
        "cfc-constant-signature",
        "identity-cfc",
    ))
    by_name = {r.name: r for r in report.results}
    assert by_name["cfc-dropped-update"].killed
    assert by_name["cfc-dropped-update"].killed_by == "golden"
    assert by_name["cfc-unchecked-backedge"].killed
    assert by_name["cfc-unchecked-backedge"].killed_by == "coverage"
    assert by_name["cfc-unchecked-backedge"].fault_model == "cf"
    assert by_name["cfc-constant-signature"].killed
    assert by_name["cfc-constant-signature"].metrics["det_drop"] > 0.05
    assert not by_name["identity-cfc"].killed
    assert report.ok and not report.survivors and not report.false_kills


def test_validate_plan_accepts_real_plan_and_rejects_corruption():
    module = compile_source(generate_minic(6).source, "plan")
    profile = profile_module(module, n_campaigns=40, seed=0)
    plan = plan_protection(module, profile, 70)
    assert validate_plan(plan, module, profile) == []
    lying = ProtectionPlan(level=plan.level, selected=plan.selected,
                           budget=plan.budget, spent=plan.spent + 5,
                           total_cost=plan.total_cost)
    assert any("spent mismatch" in v
               for v in validate_plan(lying, module, profile))


def test_sync_kind_classifies_sync_points():
    module = compile_source(generate_minic(9).source, "sync")
    duplicate_module(module)
    kinds = {sync_kind(i) for f in module.functions.values()
             if not f.is_declaration
             for b in f.blocks for i in b.instructions}
    assert {"store", "branch", "ret"} <= kinds
    assert sync_kind(next(i for i in module.instructions()
                          if not isinstance(i, (Store, CondBr, Call, Ret)))
                     ) is None


# -- shrinking ----------------------------------------------------------


def test_shrink_case_finds_minimal_subset():
    checked = []

    def fails(xs):
        checked.append(list(xs))
        return 3 in xs and 11 in xs

    out = shrink_case(list(range(16)), fails)
    assert out == [3, 11]
    # 1-minimality: removing either remaining element breaks the failure
    assert not fails([3]) and not fails([11])


def test_shrink_case_rejects_non_failing_input():
    with pytest.raises(CampaignError, match="does not fail"):
        shrink_case([1, 2, 3], lambda xs: False)


def test_minimize_minic_shrinks_statements():
    prog = generate_minic(21)
    assert len(prog.main_stmts) >= 2
    # 'failure' = the last main statement is present in the rendering
    marker = prog.main_stmts[-1]
    small = minimize_minic(prog, lambda src: marker in src)
    assert marker in small.source
    assert len(small.main_stmts) == 1
    # a predicate the program doesn't satisfy leaves it untouched
    assert minimize_minic(prog, lambda src: False) == prog
