"""Shared multi-tenant section-profile store (DESIGN §16).

Covers the satellite regressions (handle leak, no-op commit skip,
``REPRO_STORE`` defaults), the corruption quarantine, claim-based
work dedup (busy wait, stale takeover, force-simulate deadline),
degradation to private-store mode, and the ``repro store
compact|verify|stats`` maintenance surface.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.errors import CampaignError
from repro.fi.campaign import CampaignConfig
from repro.fi.compose import (
    SectionProfileStore,
    compact_store,
    run_incremental_campaign,
    store_stats,
    verify_store,
)
from repro.fi.journal import FileLock, append_doc
from repro.pipeline import build_from_source
from repro.trace import CampaignObserver

SRC = """
const int N = 5;

int scale(int x) {
    int acc = x;
    for (int i = 0; i < 3; i++) {
        acc = acc * 2 + i;
    }
    return acc;
}

int main() {
    int total = 0;
    for (int i = 0; i < N; i++) {
        total = total + scale(i);
    }
    print(total);
    return 0;
}
"""

CFG = CampaignConfig(n_campaigns=30, seed=7)


def _build():
    return build_from_source(SRC, name="store-test")


def _append_raw(path, doc):
    with open(path, "a", encoding="utf-8") as fh:
        append_doc(fh, doc)


def _open_fds():
    return len(os.listdir("/proc/self/fd"))


def _dead_pid():
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


# -- satellite: the constructor must not leak file handles ---------------


class TestHandleLeak:
    def test_failed_open_leaks_no_fd(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        with open(path, "w") as fh:
            fh.write('{"ev": "header", "version": 0, '
                     '"schema": "section-profile/0"}\n')
        with pytest.raises(CampaignError):
            SectionProfileStore(path)
        before = _open_fds()
        for _ in range(8):
            with pytest.raises(CampaignError):
                SectionProfileStore(path)
        assert _open_fds() <= before

    def test_close_releases_everything(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        before = _open_fds()
        for _ in range(8):
            SectionProfileStore(path).close()
        assert _open_fds() <= before


# -- satellite: no-op profile commits are skipped ------------------------


class TestNoopCommitSkip:
    def test_identical_recommit_skipped(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        built = _build()
        with SectionProfileStore(path) as store:
            run_incremental_campaign(built, "ir", CFG, store)
            profile = next(iter(store.profiles.values()))
            size = os.path.getsize(path)
            store.commit_profile(profile)
            assert store.noop_commits_skipped == 1
            assert os.path.getsize(path) == size
            assert store.stats()["noop_commits_skipped"] == 1

    def test_superseding_commit_still_written(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        built = _build()
        with SectionProfileStore(path) as store:
            run_incremental_campaign(built, "ir", CFG, store)
            profile = next(iter(store.profiles.values()))
            size = os.path.getsize(path)
            bigger = type(profile)(
                key=profile.key, name=profile.name,
                content_hash=profile.content_hash, n=profile.n + 5,
                counts=profile.counts, site_count=profile.site_count)
            store.commit_profile(bigger)
            assert store.noop_commits_skipped == 0
            assert os.path.getsize(path) > size


# -- corruption quarantine ----------------------------------------------


class TestQuarantine:
    def test_corrupt_row_skipped_and_resimulated(self, tmp_path):
        built = _build()
        path = str(tmp_path / "store.jsonl")
        with SectionProfileStore(path) as store:
            full = run_incremental_campaign(built, "ir", CFG, store)

        lines = open(path).read().splitlines(keepends=True)
        # corrupt one complete row line (valid JSON, wrong checksum)
        # and drop the profile commits so the rows actually matter
        idx = next(i for i, ln in enumerate(lines)
                   if ln.startswith('{"ev": "row"'))
        lines[idx] = lines[idx].replace('"ev": "row"', '"ev": "rXw"', 1)
        kept = [ln for ln in lines if '"ev": "profile"' not in ln]
        with open(path, "w") as fh:
            fh.writelines(kept)

        with SectionProfileStore(path) as store:
            assert store.scan_corrupt == 1
            assert os.path.exists(path + ".quarantine")
            resumed = run_incremental_campaign(built, "ir", CFG, store)
        # the corrupted sample re-simulated; the rest replayed
        assert resumed.counts == full.counts
        entry = json.loads(open(path + ".quarantine").readline())
        assert "checksum mismatch" in entry["reason"]

    def test_verify_reports_corruption(self, tmp_path):
        built = _build()
        path = str(tmp_path / "store.jsonl")
        with SectionProfileStore(path) as store:
            run_incremental_campaign(built, "ir", CFG, store)
        assert verify_store(path)["ok"]
        with open(path, "a") as fh:
            fh.write('{"ev": "row", "k": "x", "c": 12345}\n')
        report = verify_store(path)
        assert not report["ok"]
        assert report["corrupt"] == 1


# -- claims: concurrent-campaign work dedup ------------------------------


class TestClaims:
    def _store_with_foreign_claim(self, tmp_path, owner, ts=None, ttl=3600,
                                  n=10**6):
        """A store file whose every profile key is claimed by ``owner``."""
        built = _build()
        path = str(tmp_path / "store.jsonl")
        with SectionProfileStore(path) as store:
            run_incremental_campaign(built, "ir", CFG, store)
        keys = []
        with SectionProfileStore(path) as store:
            keys = list(store.profiles)
        # strip the profile commits, then claim every key
        lines = [ln for ln in open(path).read().splitlines(keepends=True)
                 if '"ev": "profile"' not in ln
                 and '"ev": "claim"' not in ln
                 and '"ev": "release"' not in ln]
        with open(path, "w") as fh:
            fh.writelines(lines)
        for k in keys:
            _append_raw(path, {
                "ev": "claim", "k": k, "n": n, "owner": owner,
                "ts": ts if ts is not None else time.time(), "ttl": ttl,
            })
        return built, path

    def test_stale_claim_dead_pid_taken_over(self, tmp_path):
        owner = f"{socket.gethostname()}:{_dead_pid()}:deadbeef"
        built, path = self._store_with_foreign_claim(tmp_path, owner)
        obs = CampaignObserver()
        with SectionProfileStore(path) as store:
            res = run_incremental_campaign(built, "ir", CFG, store,
                                           observer=obs)
        # the dead owner's claims read as stale: no waiting phase
        assert "coordinate" not in {e["name"] for e in obs.events
                                    if e["ev"] == "phase"}
        assert res.simulated + res.replayed > 0

    def test_expired_claim_taken_over(self, tmp_path):
        built, path = self._store_with_foreign_claim(
            tmp_path, "otherhost:1234:cafe", ts=time.time() - 100, ttl=1)
        with SectionProfileStore(path) as store:
            res = run_incremental_campaign(built, "ir", CFG, store)
        assert res.simulated + res.replayed > 0

    def test_live_foreign_claim_waits_then_force_simulates(
            self, tmp_path, monkeypatch):
        """A live cross-host claim parks the section in the coordinate
        phase; when REPRO_STORE_WAIT expires the campaign takes it
        over rather than stalling forever — and the result is
        bit-identical to a storeless run."""
        monkeypatch.setenv("REPRO_STORE_WAIT", "0.3")
        built, path = self._store_with_foreign_claim(
            tmp_path, "otherhost:1234:cafe")
        reference = run_incremental_campaign(built, "ir", CFG, None)
        obs = CampaignObserver()
        t0 = time.monotonic()
        with SectionProfileStore(path) as store:
            res = run_incremental_campaign(built, "ir", CFG, store,
                                           observer=obs)
        assert time.monotonic() - t0 >= 0.3
        phases = {e["name"] for e in obs.events if e["ev"] == "phase"}
        assert "coordinate" in phases
        assert res.counts == reference.counts

    def test_own_claims_released_on_close(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = SectionProfileStore(path)
        assert store.try_claim("k1", 5) == "mine"
        assert "k1" in store.claims
        store.close()
        with SectionProfileStore(path) as fresh:
            assert "k1" not in fresh.claims

    def test_busy_when_foreign_plan_is_at_least_as_large(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        SectionProfileStore(path).close()
        _append_raw(path, {"ev": "claim", "k": "k1", "n": 10,
                           "owner": "otherhost:1:aa",
                           "ts": time.time(), "ttl": 3600})
        with SectionProfileStore(path) as store:
            assert store.try_claim("k1", 10) == "busy"
            assert store.try_claim("k1", 5) == "busy"
            # a larger plan cannot be served by their result: claim it
            assert store.try_claim("k1", 11) == "mine"

    def test_claim_catchup_sees_fresh_profile(self, tmp_path):
        built = _build()
        path = str(tmp_path / "store.jsonl")
        with SectionProfileStore(path) as producer:
            store = SectionProfileStore(path)
            run_incremental_campaign(built, "ir", CFG, producer)
            # `store` has not looked at the file since the producer
            # committed; try_claim's locked catch-up must find the
            # profiles instead of claiming
            key = next(iter(producer.profiles))
            n = producer.profiles[key].n
            assert store.try_claim(key, n) == "served"
            store.close()


# -- degradation to private-store mode -----------------------------------


class TestDegradation:
    def test_unreachable_store_degrades_and_campaign_completes(
            self, tmp_path):
        built = _build()
        with pytest.warns(RuntimeWarning, match="private"):
            store = SectionProfileStore(str(tmp_path))   # a directory
        assert store.degraded
        res = run_incremental_campaign(built, "ir", CFG, store)
        assert res.simulated > 0
        # the private store still serves this process's own cache
        warm = run_incremental_campaign(built, "ir", CFG, store)
        assert warm.simulated == 0
        store.close()

    def test_lock_exhaustion_degrades(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        holder = FileLock(path + ".lock")
        holder.acquire()
        try:
            with pytest.warns(RuntimeWarning, match="private"):
                store = SectionProfileStore(path, lock_timeout=0.05)
            assert store.degraded
            assert "lock" in store.degraded_reason
            store.close()
        finally:
            holder.release()

    def test_degraded_observer_event(self, tmp_path):
        built = _build()
        with pytest.warns(RuntimeWarning):
            store = SectionProfileStore(str(tmp_path))
        obs = CampaignObserver()
        run_incremental_campaign(built, "ir", CFG, store, observer=obs)
        degrades = [e for e in obs.events if e["ev"] == "degrade"]
        assert degrades and degrades[0]["reason"] == "store-private"
        store.close()

    def test_schema_mismatch_still_loud(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        with open(path, "w") as fh:
            fh.write('{"ev": "header", "version": 0, '
                     '"schema": "nope/9"}\n')
        with pytest.raises(CampaignError, match="schema"):
            SectionProfileStore(path)


# -- maintenance: compact / verify / stats -------------------------------


class TestMaintenance:
    def test_compact_preserves_warm_path(self, tmp_path):
        built = _build()
        path = str(tmp_path / "store.jsonl")
        with SectionProfileStore(path) as store:
            run_incremental_campaign(built, "ir", CFG, store)
            # bloat the journal with superseded commits
            for profile in list(store.profiles.values()):
                bigger = type(profile)(
                    key=profile.key, name=profile.name,
                    content_hash=profile.content_hash, n=profile.n + 1,
                    counts=profile.counts, site_count=profile.site_count)
                store.commit_profile(bigger)
        report = compact_store(path)
        assert report["bytes_after"] < report["bytes_before"]
        assert report["docs_after"] < report["docs_before"]
        assert verify_store(path)["ok"]
        with SectionProfileStore(path) as store:
            warm = run_incremental_campaign(built, "ir", CFG, store)
        assert warm.simulated == 0
        assert warm.cache_hits == len(warm.sections)

    def test_compact_keeps_partial_rows(self, tmp_path):
        built = _build()
        path = str(tmp_path / "store.jsonl")
        with SectionProfileStore(path) as store:
            full = run_incremental_campaign(built, "ir", CFG, store)
        lines = [ln for ln in open(path).read().splitlines(keepends=True)
                 if '"ev": "profile"' not in ln]
        with open(path, "w") as fh:
            fh.writelines(lines)
        compact_store(path)
        with SectionProfileStore(path) as store:
            assert store.partial
            resumed = run_incremental_campaign(built, "ir", CFG, store)
        assert resumed.replayed > 0
        assert resumed.counts == full.counts

    def test_open_handle_survives_concurrent_compaction(self, tmp_path):
        """Another process compacting mid-campaign rotates the inode
        under our append handle; the next locked append must detect it
        and keep writing to the *new* file."""
        built = _build()
        path = str(tmp_path / "store.jsonl")
        with SectionProfileStore(path) as store:
            run_incremental_campaign(built, "ir", CFG, store)
            old_ino = os.stat(path).st_ino
            compact_store(path)           # rotates while store is open
            assert os.stat(path).st_ino != old_ino
            store.try_claim("post-compact", 1)
            assert not store.degraded
        # the claim landed in the compacted file, not the dead inode
        with SectionProfileStore(path) as fresh:
            assert not fresh.degraded

    def test_verify_checks_key_preimages(self, tmp_path):
        built = _build()
        path = str(tmp_path / "store.jsonl")
        with SectionProfileStore(path) as store:
            run_incremental_campaign(built, "ir", CFG, store)
        report = verify_store(path)
        assert report["ok"]
        assert report["keys_checked"] > 0
        assert report["key_mismatches"] == []

    def test_stats_counts_events(self, tmp_path):
        built = _build()
        path = str(tmp_path / "store.jsonl")
        with SectionProfileStore(path) as store:
            run_incremental_campaign(built, "ir", CFG, store)
        s = store_stats(path)
        assert s["profiles"] > 0
        assert s["events"]["row"] > 0
        assert s["claims_live"] == 0
        assert s["corrupt"] == 0

    def test_missing_store_is_loud(self, tmp_path):
        for fn in (verify_store, store_stats, compact_store):
            with pytest.raises(CampaignError, match="does not exist"):
                fn(str(tmp_path / "absent.jsonl"))


# -- REPRO_STORE defaults ------------------------------------------------


class TestEnvDefaults:
    def test_experiment_config_picks_up_env(self, monkeypatch):
        from repro.experiments.config import ExperimentConfig

        monkeypatch.setenv("REPRO_STORE", "/tmp/fleet.jsonl")
        assert ExperimentConfig.from_env().store_path == "/tmp/fleet.jsonl"
        monkeypatch.setenv("REPRO_STORE", "")
        assert ExperimentConfig.from_env().store_path is None

    def test_campaign_cli_defaults_to_env_store(self, tmp_path,
                                                monkeypatch, capsys):
        path = str(tmp_path / "fleet.jsonl")
        monkeypatch.setenv("REPRO_STORE", path)
        assert main(["campaign", "crc32", "--scale", "tiny",
                     "--incremental", "-n", "10"]) == 0
        assert os.path.exists(path)
        out = capsys.readouterr().out
        assert "cache-hits" in out

    def test_store_cli_defaults_to_env(self, tmp_path, monkeypatch,
                                       capsys):
        path = str(tmp_path / "fleet.jsonl")
        SectionProfileStore(path).close()
        monkeypatch.setenv("REPRO_STORE", path)
        assert main(["store", "stats"]) == 0
        assert "profiles" in capsys.readouterr().out

    def test_store_cli_without_path_or_env_errors(self, monkeypatch,
                                                  capsys):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert main(["store", "stats"]) == 2
        assert "REPRO_STORE" in capsys.readouterr().err


class TestStoreCli:
    def test_verify_and_compact_roundtrip(self, tmp_path, capsys):
        built = _build()
        path = str(tmp_path / "store.jsonl")
        with SectionProfileStore(path) as store:
            run_incremental_campaign(built, "ir", CFG, store)
        assert main(["store", "verify", path]) == 0
        assert main(["store", "compact", path]) == 0
        capsys.readouterr()
        assert main(["store", "stats", path, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["profiles"] > 0

    def test_verify_fails_on_corruption(self, tmp_path, capsys):
        path = str(tmp_path / "store.jsonl")
        SectionProfileStore(path).close()
        with open(path, "a") as fh:
            fh.write('{"ev": "row", "k": "x", "c": 1}\n')
        assert main(["store", "verify", path]) == 1
