"""Tests for the MiniC parser."""

import pytest

from repro.errors import ParseError
from repro.frontend import ast_nodes as A
from repro.frontend.parser import parse_program


def parse_main(body: str) -> A.FunctionDecl:
    prog = parse_program(f"int main() {{ {body} }}")
    return prog.functions[0]


class TestTopLevel:
    def test_globals_and_functions(self):
        prog = parse_program("""
int counter = 5;
const float pi = 3.14;
float table[4] = {1.0, 2.0, 3.0, 4.0};
int zeroed[8];
void helper() { }
int main() { return 0; }
""")
        assert [g.name for g in prog.globals] == [
            "counter", "pi", "table", "zeroed"
        ]
        assert prog.globals[1].is_const
        assert prog.globals[2].array_size == 4
        assert prog.globals[2].init_list == [1.0, 2.0, 3.0, 4.0]
        assert prog.globals[3].init_list is None
        assert [f.name for f in prog.functions] == ["helper", "main"]

    def test_negative_initializers(self):
        prog = parse_program("int x = -7;\nint a[2] = {-1, -2};\nint main(){return 0;}")
        assert prog.globals[0].init_scalar == -7
        assert prog.globals[1].init_list == [-1, -2]

    def test_int_literals_promote_in_float_globals(self):
        prog = parse_program("float f = 3;\nint main(){return 0;}")
        assert prog.globals[0].init_scalar == 3.0

    def test_params(self):
        prog = parse_program("int f(int a, float b, int c[]) { return a; } int main(){return 0;}")
        params = prog.functions[0].params
        assert [(p.name, p.base_type, p.is_array) for p in params] == [
            ("a", "int", False), ("b", "float", False), ("c", "int", True)
        ]

    def test_void_global_rejected(self):
        with pytest.raises(ParseError):
            parse_program("void g;")


class TestStatements:
    def test_vardecl_forms(self):
        fn = parse_main("int x; int y = 2; float a[3]; int b[2] = {1, 2};")
        decls = fn.body.statements
        assert isinstance(decls[0], A.VarDecl) and decls[0].init is None
        assert decls[1].init.value == 2
        assert decls[2].array_size == 3
        assert len(decls[3].array_init) == 2

    def test_assignment_ops(self):
        fn = parse_main("int x = 0; x = 1; x += 2; x <<= 3; x++; x--;")
        ops = [s.op for s in fn.body.statements[1:]]
        assert ops == ["=", "+=", "<<=", "+=", "-="]

    def test_array_assignment_target(self):
        fn = parse_main("int a[2]; a[1] = 5; a[0] += 1;")
        assign = fn.body.statements[1]
        assert isinstance(assign.target, A.Index)

    def test_if_else_chain(self):
        fn = parse_main(
            "int x = 1; if (x) { x = 2; } else if (x > 1) { x = 3; } else { x = 4; }"
        )
        node = fn.body.statements[1]
        assert isinstance(node, A.If)
        inner = node.else_body.statements[0]
        assert isinstance(inner, A.If)
        assert inner.else_body is not None

    def test_unbraced_bodies(self):
        fn = parse_main("int x = 0; if (x) x = 1; while (x) x = 0;")
        assert isinstance(fn.body.statements[1], A.If)
        assert isinstance(fn.body.statements[2], A.While)

    def test_for_variants(self):
        fn = parse_main(
            "for (int i = 0; i < 3; i++) { } "
            "int j; for (j = 0; ; j++) { break; } "
            "for (;;) { break; }"
        )
        fors = [s for s in fn.body.statements if isinstance(s, A.For)]
        assert fors[0].init is not None and fors[0].cond is not None
        assert fors[1].cond is None and fors[1].step is not None
        assert fors[2].init is None and fors[2].step is None

    def test_print_statements(self):
        fn = parse_main('print(1); printc(65); prints("x");')
        kinds = [s.kind for s in fn.body.statements]
        assert kinds == ["print", "printc", "prints"]
        assert fn.body.statements[2].arg == "x"

    def test_return_break_continue(self):
        fn = parse_main("while (1) { break; continue; } return 5;")
        loop = fn.body.statements[0]
        assert isinstance(loop.body.statements[0], A.Break)
        assert isinstance(loop.body.statements[1], A.Continue)
        assert fn.body.statements[1].value.value == 5


class TestExpressions:
    def get_expr(self, text):
        fn = parse_main(f"int x = {text};")
        return fn.body.statements[0].init

    def test_precedence(self):
        e = self.get_expr("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_left_associativity(self):
        e = self.get_expr("10 - 4 - 3")
        assert e.op == "-" and e.left.op == "-"

    def test_comparison_binds_looser_than_arith(self):
        e = self.get_expr("1 + 2 < 3 * 4")
        assert e.op == "<"

    def test_logical_lowest(self):
        e = self.get_expr("1 < 2 && 3 < 4 || 0")
        assert e.op == "||" and e.left.op == "&&"

    def test_parens(self):
        e = self.get_expr("(1 + 2) * 3")
        assert e.op == "*" and e.left.op == "+"

    def test_unary_chain(self):
        e = self.get_expr("-(-5)")
        assert isinstance(e, A.Unary) and isinstance(e.operand, A.Unary)

    def test_double_minus_lexes_as_decrement(self):
        # `--5` munches a `--` token, which is not a unary operator
        with pytest.raises(ParseError):
            self.get_expr("--5")

    def test_casts(self):
        e = self.get_expr("int(1.5) + float(2)")
        assert isinstance(e.left, A.CastExpr) and e.left.target == "int"
        assert isinstance(e.right, A.CastExpr) and e.right.target == "float"

    def test_calls_and_indexing(self):
        fn = parse_main("int a[2]; int x = f(a[0], 2) + a[1];")
        expr = fn.body.statements[1].init
        call = expr.left
        assert isinstance(call, A.CallExpr) and call.name == "f"
        assert isinstance(call.args[0], A.Index)


class TestErrors:
    @pytest.mark.parametrize(
        "src",
        [
            "int main() { return 0 }",          # missing semicolon
            "int main() { if x { } }",          # missing parens
            "int main() { int 3x; }",           # bad identifier
            "int main() { x = ; }",             # missing rhs
            "int main() { ",                    # unterminated block
            "int main() { a[1 = 2; }",          # unbalanced bracket
            "const int f() { return 0; }",      # const function
        ],
    )
    def test_syntax_errors(self, src):
        with pytest.raises(ParseError):
            parse_program(src)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as exc:
            parse_program("int main() {\n  return 0\n}")
        assert exc.value.line >= 2
