#!/usr/bin/env python3
"""Quickstart: protect a benchmark and measure SDC coverage at both layers.

This walks the paper's core experiment end to end on one benchmark:

1. build the unprotected program and measure its raw SDC probability at
   the IR ("LLVM") layer and the assembly layer;
2. apply full instruction duplication and measure again;
3. report coverage at both layers — the gap between them is the
   cross-layer deficiency the paper demonstrates.

Run:  python examples/quickstart.py
"""

from repro.analysis.coverage import sdc_coverage
from repro.fi.campaign import CampaignConfig, run_asm_campaign, run_ir_campaign
from repro.pipeline import build

BENCH = "crc32"
CFG = CampaignConfig(n_campaigns=300, seed=42)


def main() -> None:
    print(f"benchmark: {BENCH} (small input)")

    # -- unprotected baseline ------------------------------------------
    plain = build(BENCH, scale="small")
    golden = plain.run_asm()
    print(f"golden output: {golden.output.strip()!r}")
    print(f"dynamic instructions: IR={plain.run_ir().dyn_total} "
          f"ASM={golden.dyn_total}")

    raw_ir = run_ir_campaign(plain.module, CFG, plain.layout)
    raw_asm = run_asm_campaign(plain.compiled, plain.layout, CFG)
    print(f"\nraw SDC probability: IR={raw_ir.sdc_probability:.3f} "
          f"ASM={raw_asm.sdc_probability:.3f}")

    # -- full instruction duplication -----------------------------------
    protected = build(BENCH, scale="small", level=100)
    info = protected.protection.dup_info
    print(f"\nprotected {len(info.protected)} instructions, "
          f"{info.checker_count()} checkers inserted")
    print(f"checkers folded by the backend: "
          f"{len(protected.asm.folded_checkers)} "
          "(the comparison penetration)")

    prot_ir = run_ir_campaign(protected.module, CFG, protected.layout)
    prot_asm = run_asm_campaign(protected.compiled, protected.layout, CFG)

    cov_ir = sdc_coverage(raw_ir.sdc_probability, prot_ir.sdc_probability)
    cov_asm = sdc_coverage(raw_asm.sdc_probability, prot_asm.sdc_probability)
    print(f"\nSDC coverage at IR level:        {cov_ir:7.2%}   "
          "(what prior work reports)")
    print(f"SDC coverage at assembly level:  {cov_asm:7.2%}   "
          "(what the hardware experiences)")
    print(f"cross-layer gap:                 {cov_ir - cov_asm:7.2%}")

    # -- Flowery ----------------------------------------------------------
    flowery = build(BENCH, scale="small", level=100, flowery=True)
    fl_asm = run_asm_campaign(flowery.compiled, flowery.layout, CFG)
    cov_fl = sdc_coverage(raw_asm.sdc_probability, fl_asm.sdc_probability)
    print(f"\nwith Flowery (assembly level):   {cov_fl:7.2%}   "
          "(the mitigation)")


if __name__ == "__main__":
    main()
