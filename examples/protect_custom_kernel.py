#!/usr/bin/env python3
"""Protect your own kernel: selective protection on a MiniC stencil.

Shows the library as a downstream user would apply it to new code —
write a kernel in MiniC, profile it with IR fault injection, and sweep
the paper's protection levels to pick a coverage/overhead point.

Run:  python examples/protect_custom_kernel.py
"""

from repro.analysis.coverage import sdc_coverage
from repro.fi.campaign import CampaignConfig, run_ir_campaign
from repro.pipeline import build_from_source
from repro.protection.planner import profile_module

# a 1-D heat-diffusion stencil with a convergence check — the kind of
# kernel the paper's HPC motivation describes
KERNEL = """
const int N = 32;
const int STEPS = 12;

float grid[32];
float next[32];

int main() {
    for (int i = 0; i < N; i++) {
        grid[i] = float(i % 7) * 0.5;
    }
    for (int s = 0; s < STEPS; s++) {
        for (int i = 1; i < N - 1; i++) {
            next[i] = 0.25 * grid[i - 1] + 0.5 * grid[i] + 0.25 * grid[i + 1];
        }
        for (int i = 1; i < N - 1; i++) { grid[i] = next[i]; }
    }
    float checksum = 0.0;
    for (int i = 0; i < N; i++) { checksum += grid[i] * float(i); }
    print(checksum);
    return 0;
}
"""

CFG = CampaignConfig(n_campaigns=250, seed=7)


def main() -> None:
    # profile once on the unprotected kernel; reuse for every level
    baseline = build_from_source(KERNEL, "stencil")
    profile = profile_module(baseline.module, n_campaigns=500, seed=7)
    raw = run_ir_campaign(baseline.module, CFG, baseline.layout)
    base_dyn = baseline.run_ir().dyn_total
    print(f"stencil kernel: {base_dyn} dynamic IR instructions, "
          f"raw SDC probability {raw.sdc_probability:.3f}\n")

    print(f"{'level':>6} {'coverage':>9} {'overhead':>9} "
          f"{'protected':>10} {'checkers':>9}")
    for level in (30, 50, 70, 100):
        built = build_from_source(
            KERNEL, "stencil", level=level, profile=profile
        )
        prot = run_ir_campaign(built.module, CFG, built.layout)
        cov = sdc_coverage(raw.sdc_probability, prot.sdc_probability)
        overhead = (prot.golden_dyn_total - base_dyn) / base_dyn
        dup = built.protection.dup_info
        print(f"{level:5d}% {cov:9.2%} {overhead:9.2%} "
              f"{len(dup.protected):10d} {dup.checker_count():9d}")

    print("\nThe knapsack planner front-loads the most SDC-prone "
          "instructions, so coverage rises much faster than overhead — "
          "the trade-off the paper's §3 describes.")


if __name__ == "__main__":
    main()
