#!/usr/bin/env python3
"""Flowery under the microscope: how each patch changes the code.

Compiles a minimal program that exhibits all three fixable penetrations
and prints the relevant IR/assembly before and after Flowery, so you
can see the exact mechanisms of §6:

* eager store — the store moves above its checker;
* postponed branch check — expected-successor bookkeeping and edge
  verification blocks appear;
* anti-comparison duplication — the shadow compare moves behind an
  opaque volatile-load guard and the checker stops folding.

Run:  python examples/flowery_mitigation.py
"""

from repro.backend.isa import Role
from repro.backend.lower import lower_module
from repro.frontend.codegen import compile_source
from repro.interp.layout import GlobalLayout
from repro.ir.printer import print_function
from repro.protection.duplication import duplicate_module
from repro.protection.flowery import apply_flowery

SRC = """
int a = 3;
int b = 8;
int out = 0;

int main() {
    int x = a + b;
    out = x;
    if (a < b) { out += 1; }
    print(out);
    return 0;
}
"""


def describe(tag: str, store_mode: str, flowery: bool) -> None:
    module = compile_source(SRC)
    info = duplicate_module(module, store_mode=store_mode)
    if flowery:
        apply_flowery(module, info)
    asm = lower_module(module, GlobalLayout(module))
    insts = asm.functions["main"].insts
    counts = {
        "store-reload movs": sum(1 for i in insts
                                 if i.role == Role.STORE_RELOAD),
        "branch tests": sum(1 for i in insts if i.role == Role.BR_TEST),
        "folded checkers": len(asm.folded_checkers),
        "asm instructions": len(insts),
    }
    print(f"--- {tag} ---")
    for k, v in counts.items():
        print(f"  {k:20s} {v}")
    print()
    return module


def main() -> None:
    print("minimal program exercising store/branch/comparison "
          "penetrations:\n")
    describe("instruction duplication (lazy store)", "lazy", False)
    module = describe("with all Flowery patches", "eager", True)

    print("protected main() after Flowery (IR):\n")
    print(print_function(module.function("main")))
    print("\nlook for: stores above their checkers (eager store), "
          "@__flowery_br_expect bookkeeping + br.verify blocks "
          "(postponed branch), and anticmp.check blocks behind the "
          "volatile @__flowery_guard load (anti-comparison).")


if __name__ == "__main__":
    main()
