#!/usr/bin/env python3
"""Fault forensics: narrate every SDC that escaped full protection.

The paper's authors manually examined each deficiency case to derive
the five penetration categories (§5.2).  This example automates that
workflow: run a campaign against a fully protected benchmark, then
replay every escaped SDC and print its "fault story" — the assembly
site, the IR provenance, the protection state, the root cause, and the
first corrupted output line.

Run:  python examples/fault_forensics.py
"""

from repro.analysis.forensics import explain_injection
from repro.fi.campaign import CampaignConfig, run_asm_campaign
from repro.pipeline import build

BENCH = "lud"
CFG = CampaignConfig(n_campaigns=400, seed=13)


def main() -> None:
    built = build(BENCH, scale="small", level=100)
    assert built.protection is not None
    campaign = run_asm_campaign(built.compiled, built.layout, CFG)
    summary = {o.value: n for o, n in campaign.counts.items() if n}
    print(f"{BENCH} under full protection, {CFG.n_campaigns} injections: "
          f"{summary}\n")

    escapes = campaign.sdc_records()
    if not escapes:
        print("no SDC escaped this campaign — increase n_campaigns")
        return

    print(f"{len(escapes)} SDCs escaped; their stories:\n")
    for record in escapes:
        story = explain_injection(
            record, built.module, built.layout,
            compiled=built.compiled, asm=built.asm,
            dup_info=built.protection.dup_info,
        )
        print(story.narrate())
        print()


if __name__ == "__main__":
    main()
