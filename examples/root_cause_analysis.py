#!/usr/bin/env python3
"""Root-cause analysis: why does full protection leak SDCs at assembly?

Reproduces the paper's §5.2 workflow on one benchmark: run an
assembly-level campaign against a *fully protected* binary, classify
every escaped SDC into the five penetration categories, and show the
actual assembly instructions where faults slipped through.

Run:  python examples/root_cause_analysis.py
"""

from collections import Counter

from repro.analysis.rootcause import Penetration, RootCauseClassifier
from repro.fi.campaign import CampaignConfig, run_asm_campaign
from repro.fi.outcomes import Outcome
from repro.pipeline import build

BENCH = "pathfinder"
CFG = CampaignConfig(n_campaigns=500, seed=11)


def main() -> None:
    built = build(BENCH, scale="small", level=100)
    assert built.protection is not None
    print(f"benchmark: {BENCH}, full instruction duplication")
    print(f"checkers inserted: {built.protection.dup_info.checker_count()}, "
          f"folded by backend: {len(built.asm.folded_checkers)}\n")

    campaign = run_asm_campaign(built.compiled, built.layout, CFG)
    print("assembly-level campaign:", {
        o.value: n for o, n in campaign.counts.items() if n
    })

    clf = RootCauseClassifier(
        built.module, built.asm, built.protection.dup_info
    )
    causes = Counter()
    samples = {}
    for record in campaign.sdc_records():
        cause = clf.classify(record)
        causes[cause] += 1
        samples.setdefault(cause, record)

    total = sum(n for c, n in causes.items() if c.is_deficiency)
    print(f"\n{total} deficiency cases — root-cause distribution "
          "(paper fig. 3: store 39.1%, branch 35.7%, cmp 19.7%, "
          "call 3.1%, mapping 2.5%):")
    for cause, n in causes.most_common():
        share = f"{n / total:6.1%}" if cause.is_deficiency and total else "   — "
        print(f"  {cause.value:12s} {n:4d}  {share}")

    print("\nexample escape sites (assembly instruction that took the "
          "fault):")
    flat = built.asm.flatten()
    for cause, record in samples.items():
        if record.asm_index is None:
            continue
        inst = flat.insts[record.asm_index]
        ir_part = f"(IR %t{inst.prov_iid})" if inst.prov_iid else "(no IR)"
        print(f"  {cause.value:12s} -> {str(inst):40s} "
              f"role={inst.role} {ir_part}")


if __name__ == "__main__":
    main()
